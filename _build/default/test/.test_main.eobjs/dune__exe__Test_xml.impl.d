test/test_xml.ml: Alcotest Array Bp Buffer Char Document List Option Printf QCheck2 QCheck_alcotest String Sxsi_core Sxsi_tree Sxsi_xml Tag_index Tag_rel Xml_parser

test/test_bio.ml: Alcotest Array List Printf Pssm QCheck2 QCheck_alcotest Random Rle_fm String Sxsi_baseline Sxsi_bio Sxsi_core Sxsi_datagen Sxsi_fm Sxsi_xml Sxsi_xpath

test/test_baseline.ml: Alcotest Document Dom List Naive_eval QCheck2 QCheck_alcotest Stream_eval String Sxsi_baseline Sxsi_tree Sxsi_xml Sxsi_xpath

test/test_xpath.ml: Alcotest Ast List Printf String Sxsi_xpath Xpath_parser

test/test_auto.ml: Alcotest Array Automaton Compile Document Formula List String Sxsi_auto Sxsi_xml Sxsi_xpath

test/test_engine.ml: Alcotest Array Buffer Document Dom Engine List Naive_eval Printf QCheck2 QCheck_alcotest Run String Sxsi_baseline Sxsi_core Sxsi_xml Sxsi_xpath

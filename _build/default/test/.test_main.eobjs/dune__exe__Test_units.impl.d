test/test_units.ml: Alcotest Array Bp Buffer Document Engine Filename Fun List Marks Option Run Stateset String Sxsi_core Sxsi_datagen Sxsi_text Sxsi_tree Sxsi_xml Sys Tag_index

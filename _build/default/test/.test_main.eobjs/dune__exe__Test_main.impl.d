test/test_main.ml: Alcotest Test_auto Test_baseline Test_bio Test_bits Test_datagen Test_engine Test_fm Test_integration Test_text Test_tree Test_units Test_wordindex Test_xml Test_xpath

test/test_fm.ml: Alcotest Array Char Fm_index List QCheck2 QCheck_alcotest Sais String Sxsi_fm

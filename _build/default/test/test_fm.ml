(* SA-IS and FM-index tests, each checked against naive string scans. *)

open Sxsi_fm

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* SA-IS                                                                *)
(* ------------------------------------------------------------------ *)

let naive_suffix_array s =
  let n = Array.length s in
  let idx = Array.init n (fun i -> i) in
  let cmp a b =
    let rec go a b =
      if a >= n then -1
      else if b >= n then 1
      else if s.(a) <> s.(b) then compare s.(a) s.(b)
      else go (a + 1) (b + 1)
    in
    if a = b then 0 else go a b
  in
  Array.sort cmp idx;
  idx

let sentinel_string_gen =
  QCheck2.Gen.(
    list_size (int_range 0 300) (int_range 1 5)
    |> map (fun l -> Array.of_list (l @ [ 0 ])))

let test_sais_known () =
  (* "banana" + sentinel: b=2 a=1 n=3 *)
  let s = [| 2; 1; 3; 1; 3; 1; 0 |] in
  let sa = Sais.suffix_array s 4 in
  Alcotest.(check (array int)) "banana" [| 6; 5; 3; 1; 0; 4; 2 |] sa

let test_sais_single () =
  Alcotest.(check (array int)) "sentinel only" [| 0 |] (Sais.suffix_array [| 0 |] 1);
  Alcotest.(check (array int)) "empty" [||] (Sais.suffix_array [||] 1)

let test_sais_rejects () =
  Alcotest.check_raises "no sentinel" (Invalid_argument "Sais.suffix_array: missing sentinel")
    (fun () -> ignore (Sais.suffix_array [| 1; 2 |] 3));
  Alcotest.check_raises "interior zero"
    (Invalid_argument "Sais.suffix_array: symbol out of range") (fun () ->
      ignore (Sais.suffix_array [| 1; 0; 2; 0 |] 3))

let prop_sais =
  qtest ~count:300 "SA-IS matches naive sort" sentinel_string_gen (fun s ->
      Sais.suffix_array s 6 = naive_suffix_array s)

let prop_sais_large_alphabet =
  qtest ~count:100 "SA-IS matches naive sort (alphabet 100)"
    QCheck2.Gen.(
      list_size (int_range 0 200) (int_range 1 99)
      |> map (fun l -> Array.of_list (l @ [ 0 ])))
    (fun s -> Sais.suffix_array s 100 = naive_suffix_array s)

(* ------------------------------------------------------------------ *)
(* FM-index                                                             *)
(* ------------------------------------------------------------------ *)

let texts_gen =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (string_size ~gen:(map Char.chr (int_range 97 101)) (int_range 0 30))
    |> map Array.of_list)

let naive_count texts p =
  if String.length p = 0 then 0
  else
    Array.fold_left
      (fun acc t ->
        let m = String.length p and n = String.length t in
        let c = ref 0 in
        for i = 0 to n - m do
          if String.sub t i m = p then incr c
        done;
        acc + !c)
      0 texts

let test_fm_basic () =
  let texts = [| "pen"; "Soon discontinued"; "blue"; "40"; "rubber"; "30" |] in
  let fm = Fm_index.build ~sample_rate:3 texts in
  Alcotest.(check int) "doc_count" 6 (Fm_index.doc_count fm);
  Alcotest.(check int) "length" (Array.fold_left (fun a s -> a + String.length s + 1) 0 texts)
    (Fm_index.length fm);
  Alcotest.(check int) "count 'n'" 4 (Fm_index.count fm "n");
  Alcotest.(check int) "count 'ue'" 2 (Fm_index.count fm "ue");
  Alcotest.(check int) "count 'pen'" 1 (Fm_index.count fm "pen");
  Alcotest.(check int) "count absent" 0 (Fm_index.count fm "zzz");
  for i = 0 to 5 do
    Alcotest.(check string) "extract" texts.(i) (Fm_index.extract fm i)
  done

let test_fm_discontinued () =
  (* The paper's running FM example (Fig 2). *)
  let fm = Fm_index.build ~sample_rate:3 [| "discontinued" |] in
  Alcotest.(check int) "count n" 2 (Fm_index.count fm "n");
  Alcotest.(check int) "count dis" 1 (Fm_index.count fm "dis");
  let sp, ep = Fm_index.search fm "n" in
  Alcotest.(check int) "two rows" 2 (ep - sp);
  let positions = List.init (ep - sp) (fun k -> Fm_index.locate fm (sp + k)) in
  Alcotest.(check (list int)) "occurrence positions" [ 5; 8 ]
    (List.sort compare positions);
  Alcotest.(check string) "extract" "discontinued" (Fm_index.extract fm 0)

let test_fm_text_metadata () =
  let fm = Fm_index.build [| "ab"; ""; "xyz" |] in
  Alcotest.(check int) "start 0" 0 (Fm_index.text_start fm 0);
  Alcotest.(check int) "start 1" 3 (Fm_index.text_start fm 1);
  Alcotest.(check int) "start 2" 4 (Fm_index.text_start fm 2);
  Alcotest.(check int) "len 0" 2 (Fm_index.text_length fm 0);
  Alcotest.(check int) "len 1" 0 (Fm_index.text_length fm 1);
  Alcotest.(check int) "len 2" 3 (Fm_index.text_length fm 2);
  Alcotest.(check string) "extract empty" "" (Fm_index.extract fm 1);
  Alcotest.(check (pair int int)) "pos_to_text" (2, 1) (Fm_index.pos_to_text fm 5)

let test_fm_rejects_nul () =
  Alcotest.check_raises "NUL byte" (Invalid_argument "Fm_index.build: NUL byte in text")
    (fun () -> ignore (Fm_index.build [| "a\000b" |]))

let prop_fm_count =
  qtest "count matches naive scan" texts_gen (fun texts ->
      let fm = Fm_index.build ~sample_rate:4 texts in
      List.for_all
        (fun p -> Fm_index.count fm p = naive_count texts p)
        [ "a"; "b"; "ab"; "ba"; "aa"; "abc"; "cab"; "e"; "ee"; "abcde" ])

let prop_fm_extract =
  qtest "extract reproduces every text" texts_gen (fun texts ->
      let fm = Fm_index.build ~sample_rate:5 texts in
      let ok = ref true in
      Array.iteri (fun i s -> if Fm_index.extract fm i <> s then ok := false) texts;
      !ok)

let prop_fm_locate =
  qtest "locate finds all occurrence positions" texts_gen (fun texts ->
      let fm = Fm_index.build ~sample_rate:3 texts in
      (* concatenation with terminators, as positions are global *)
      let concat =
        String.concat "" (Array.to_list (Array.map (fun s -> s ^ "\000") texts))
      in
      List.for_all
        (fun p ->
          let sp, ep = Fm_index.search fm p in
          let got =
            List.init (ep - sp) (fun k -> Fm_index.locate fm (sp + k))
            |> List.sort compare
          in
          let expected = ref [] in
          let m = String.length p in
          for i = String.length concat - m downto 0 do
            if String.sub concat i m = p then expected := i :: !expected
          done;
          got = !expected)
        [ "a"; "ab"; "abc"; "ca"; "dd" ])

let prop_fm_pos_to_text =
  qtest "pos_to_text inverts text_start" texts_gen (fun texts ->
      let fm = Fm_index.build texts in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          let st = Fm_index.text_start fm i in
          String.iteri
            (fun off _ ->
              if Fm_index.pos_to_text fm (st + off) <> (i, off) then ok := false)
            s)
        texts;
      !ok)

(* ------------------------------------------------------------------ *)
(* Approximate search                                                   *)
(* ------------------------------------------------------------------ *)

let naive_count_approx texts p k =
  let m = String.length p in
  Array.fold_left
    (fun acc t ->
      let n = String.length t in
      let c = ref 0 in
      for i = 0 to n - m do
        let mism = ref 0 in
        for j = 0 to m - 1 do
          if t.[i + j] <> p.[j] then incr mism
        done;
        if !mism <= k then incr c
      done;
      acc + !c)
    0 texts

let test_approx_basic () =
  let fm = Fm_index.build [| "banana"; "panama" |] in
  Alcotest.(check int) "exact" 1 (Fm_index.count_approx fm "banana" ~k:0);
  Alcotest.(check int) "panana k=1 hits both" 2 (Fm_index.count_approx fm "panana" ~k:1);
  Alcotest.(check int) "exact ana" 3 (Fm_index.count_approx fm "ana" ~k:0);
  Alcotest.(check bool) "k grows results" true
    (Fm_index.count_approx fm "ana" ~k:1 > Fm_index.count_approx fm "ana" ~k:0);
  Alcotest.check_raises "negative k"
    (Invalid_argument "Fm_index.search_approx: negative budget") (fun () ->
      ignore (Fm_index.count_approx fm "x" ~k:(-1)))

let prop_approx =
  qtest ~count:80 "count_approx matches naive Hamming scan" texts_gen (fun texts ->
      let fm = Fm_index.build texts in
      List.for_all
        (fun (p, k) -> Fm_index.count_approx fm p ~k = naive_count_approx texts p k)
        [ ("ab", 0); ("ab", 1); ("abc", 1); ("aa", 1); ("e", 1); ("abcd", 2) ])

let suite =
  ( "fm",
    [
      Alcotest.test_case "sais banana" `Quick test_sais_known;
      Alcotest.test_case "sais degenerate" `Quick test_sais_single;
      Alcotest.test_case "sais rejects bad input" `Quick test_sais_rejects;
      Alcotest.test_case "fm basic" `Quick test_fm_basic;
      Alcotest.test_case "fm paper example" `Quick test_fm_discontinued;
      Alcotest.test_case "fm text metadata" `Quick test_fm_text_metadata;
      Alcotest.test_case "fm rejects NUL" `Quick test_fm_rejects_nul;
      prop_sais;
      prop_sais_large_alphabet;
      prop_fm_count;
      prop_fm_extract;
      prop_fm_locate;
      prop_fm_pos_to_text;
      Alcotest.test_case "approx search basic" `Quick test_approx_basic;
      prop_approx;
    ] )

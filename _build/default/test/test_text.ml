(* Text collection operators vs naive string predicates. *)

open Sxsi_text

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let texts_gen =
  QCheck2.Gen.(
    list_size (int_range 1 15)
      (string_size ~gen:(map Char.chr (int_range 97 100)) (int_range 0 12))
    |> map Array.of_list)

let patterns = [ "a"; "b"; "ab"; "ba"; "aab"; "abc"; "c"; "dd"; "abcd"; "" ]

let naive_ids texts pred =
  Array.to_list (Array.mapi (fun i s -> (i, s)) texts)
  |> List.filter_map (fun (i, s) -> if pred s then Some i else None)

let has_sub s p =
  let n = String.length s and m = String.length p in
  if m = 0 then false
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if String.sub s i m = p then found := true
    done;
    !found
  end

let has_prefix s p =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

let has_suffix s p =
  let n = String.length s and m = String.length p in
  m <= n && String.sub s (n - m) m = p

let sample = [| "pen"; "Soon discontinued"; "blue"; "40"; "rubber"; "30"; "" |]

let build_sample () = Text_collection.build ~sample_rate:4 sample

let test_basic_counts () =
  let tc = build_sample () in
  Alcotest.(check int) "doc_count" 7 (Text_collection.doc_count tc);
  Alcotest.(check int) "global_count ue" 2 (Text_collection.global_count tc "ue");
  Alcotest.(check int) "global_count o" 3 (Text_collection.global_count tc "o");
  Alcotest.(check (list int)) "contains ue" [ 1; 2 ] (Text_collection.contains tc "ue");
  Alcotest.(check (list int)) "contains o" [ 1 ] (Text_collection.contains tc "o");
  Alcotest.(check (list int)) "contains 0" [ 3; 5 ] (Text_collection.contains tc "0")

let test_predicates () =
  let tc = build_sample () in
  Alcotest.(check (list int)) "equals pen" [ 0 ] (Text_collection.equals tc "pen");
  Alcotest.(check (list int)) "equals absent" [] (Text_collection.equals tc "pens");
  Alcotest.(check (list int)) "starts_with b" [ 2 ] (Text_collection.starts_with tc "b");
  Alcotest.(check (list int)) "starts_with S" [ 1 ] (Text_collection.starts_with tc "S");
  Alcotest.(check (list int)) "ends_with 0" [ 3; 5 ] (Text_collection.ends_with tc "0");
  Alcotest.(check (list int)) "ends_with e" [ 2 ] (Text_collection.ends_with tc "e");
  Alcotest.(check int) "ends_with_count er" 1 (Text_collection.ends_with_count tc "er")

let test_get_text_plain_and_fm () =
  let plain = Text_collection.build ~store_plain:true sample in
  let nofm = Text_collection.build ~store_plain:false sample in
  Array.iteri
    (fun i s ->
      Alcotest.(check string) "plain" s (Text_collection.get_text plain i);
      Alcotest.(check string) "fm" s (Text_collection.get_text nofm i))
    sample

let test_lexicographic () =
  let tc = Text_collection.build [| "apple"; "banana"; "apricot"; "cherry"; "app" |] in
  Alcotest.(check (list int)) "lt banana" [ 0; 2; 4 ]
    (Text_collection.less_than tc "banana");
  Alcotest.(check (list int)) "lt apple" [ 4 ] (Text_collection.less_than tc "apple");
  Alcotest.(check (list int)) "le apple" [ 0; 4 ] (Text_collection.less_equal tc "apple");
  Alcotest.(check (list int)) "gt banana" [ 3 ] (Text_collection.greater_than tc "banana");
  Alcotest.(check (list int)) "ge banana" [ 1; 3 ]
    (Text_collection.greater_equal tc "banana");
  Alcotest.(check int) "lt_count zzz" 5 (Text_collection.less_than_count tc "zzz");
  Alcotest.(check int) "lt_count a" 0 (Text_collection.less_than_count tc "a")

let test_strategy_cutoff () =
  let texts = Array.make 50 "xyxyxy" in
  let tc = Text_collection.build ~contains_cutoff:10 texts in
  Alcotest.(check bool) "picks plain scan" true
    (Text_collection.contains_strategy tc "xy" = Text_collection.Plain_scan);
  Alcotest.(check bool) "rare pattern keeps FM" true
    (Text_collection.contains_strategy tc "yy" = Text_collection.Fm_locate);
  Alcotest.(check (list int)) "strategies agree"
    (Text_collection.contains_via tc Text_collection.Fm_locate "xy")
    (Text_collection.contains_via tc Text_collection.Plain_scan "xy")

let prop_contains =
  qtest "contains matches naive" texts_gen (fun texts ->
      let tc = Text_collection.build ~sample_rate:3 texts in
      List.for_all
        (fun p -> Text_collection.contains tc p = naive_ids texts (fun s -> has_sub s p))
        patterns)

let prop_equals =
  qtest "equals matches naive" texts_gen (fun texts ->
      let tc = Text_collection.build texts in
      List.for_all
        (fun p ->
          p = ""
          || Text_collection.equals tc p = naive_ids texts (fun s -> s = p))
        patterns)

let prop_starts_with =
  qtest "starts_with matches naive" texts_gen (fun texts ->
      let tc = Text_collection.build texts in
      List.for_all
        (fun p ->
          p = ""
          || Text_collection.starts_with tc p = naive_ids texts (fun s -> has_prefix s p))
        patterns)

let prop_ends_with =
  qtest "ends_with matches naive" texts_gen (fun texts ->
      let tc = Text_collection.build ~sample_rate:2 texts in
      List.for_all
        (fun p ->
          p = ""
          || Text_collection.ends_with tc p = naive_ids texts (fun s -> has_suffix s p))
        patterns)

let prop_less_than =
  qtest "less_than matches naive" texts_gen (fun texts ->
      let tc = Text_collection.build texts in
      List.for_all
        (fun p ->
          p = ""
          || Text_collection.less_than tc p = naive_ids texts (fun s -> s < p))
        patterns)

let prop_lex_partition =
  qtest "lt/eq/gt partition all texts" texts_gen (fun texts ->
      let tc = Text_collection.build texts in
      List.for_all
        (fun p ->
          p = ""
          ||
          let lt = Text_collection.less_than_count tc p in
          let eq = Text_collection.equals_count tc p in
          let gt = List.length (Text_collection.greater_than tc p) in
          lt + eq + gt = Array.length texts)
        patterns)

(* ------------------------------------------------------------------ *)
(* LZ78 store                                                           *)
(* ------------------------------------------------------------------ *)

let test_lz78_roundtrip () =
  let texts = [| "abababab"; ""; "abcabcabc"; "xyz"; "abababab" |] in
  let lz = Lz78.of_texts texts in
  Alcotest.(check int) "doc_count" 5 (Lz78.doc_count lz);
  Array.iteri
    (fun i s -> Alcotest.(check string) "decode" s (Lz78.get lz i))
    texts

let test_lz78_compresses () =
  let s = String.concat "" (List.init 200 (fun _ -> "abcabcab")) in
  let lz = Lz78.of_texts [| s |] in
  Alcotest.(check bool) "fewer phrases than chars" true
    (Lz78.phrase_count lz < String.length s / 4)

let prop_lz78 =
  qtest "LZ78 round-trips random collections" texts_gen (fun texts ->
      let lz = Lz78.of_texts texts in
      let ok = ref true in
      Array.iteri (fun i s -> if Lz78.get lz i <> s then ok := false) texts;
      !ok)

let test_range_restricted () =
  let tc = build_sample () in
  Alcotest.(check (list int)) "contains_in full" [ 1; 2 ]
    (Text_collection.contains_in tc "ue" ~lo:0 ~hi:7);
  Alcotest.(check (list int)) "contains_in narrow" [ 2 ]
    (Text_collection.contains_in tc "ue" ~lo:2 ~hi:4);
  Alcotest.(check (list int)) "equals_in" []
    (Text_collection.equals_in tc "pen" ~lo:1 ~hi:7);
  Alcotest.(check (list int)) "starts_with_in" [ 1 ]
    (Text_collection.starts_with_in tc "S" ~lo:0 ~hi:2);
  Alcotest.(check (list int)) "ends_with_in" [ 5 ]
    (Text_collection.ends_with_in tc "0" ~lo:4 ~hi:7)

let prop_range_restricted =
  qtest ~count:80 "range-restricted ops match filtered full ops" texts_gen (fun texts ->
      let tc = Text_collection.build texts in
      let d = Array.length texts in
      let ranges = [ (0, d); (0, d / 2); (d / 2, d); (1, max 1 (d - 1)) ] in
      List.for_all
        (fun p ->
          p = ""
          || List.for_all
               (fun (lo, hi) ->
                 let f sel = List.filter (fun i -> i >= lo && i < hi) (sel tc p) in
                 Text_collection.starts_with_in tc p ~lo ~hi
                 = f Text_collection.starts_with
                 && Text_collection.equals_in tc p ~lo ~hi = f Text_collection.equals
                 && Text_collection.contains_in tc p ~lo ~hi
                    = f Text_collection.contains
                 && Text_collection.ends_with_in tc p ~lo ~hi
                    = f Text_collection.ends_with)
               ranges)
        patterns)

let test_store_modes () =
  List.iter
    (fun store ->
      let tc = Text_collection.build ~store sample in
      Array.iteri
        (fun i s -> Alcotest.(check string) "get_text" s (Text_collection.get_text tc i))
        sample;
      Alcotest.(check (list int)) "contains" [ 1; 2 ] (Text_collection.contains tc "ue"))
    [ Text_collection.Plain_store; Text_collection.Lz78_store; Text_collection.No_store ];
  (* plain-scan strategy also works over the LZ78 store *)
  let tc = Text_collection.build ~store:Text_collection.Lz78_store sample in
  Alcotest.(check (list int)) "lz78 plain scan" [ 1; 2 ]
    (Text_collection.contains_via tc Text_collection.Plain_scan "ue")

let suite =
  ( "text",
    [
      Alcotest.test_case "basic counts" `Quick test_basic_counts;
      Alcotest.test_case "predicates" `Quick test_predicates;
      Alcotest.test_case "get_text plain and fm" `Quick test_get_text_plain_and_fm;
      Alcotest.test_case "lexicographic" `Quick test_lexicographic;
      Alcotest.test_case "strategy cutoff" `Quick test_strategy_cutoff;
      prop_contains;
      prop_equals;
      prop_starts_with;
      prop_ends_with;
      prop_less_than;
      prop_lex_partition;
      Alcotest.test_case "lz78 round-trip" `Quick test_lz78_roundtrip;
      Alcotest.test_case "lz78 compresses" `Quick test_lz78_compresses;
      Alcotest.test_case "store modes" `Quick test_store_modes;
      Alcotest.test_case "range-restricted operators" `Quick test_range_restricted;
      prop_range_restricted;
      prop_lz78;
    ] )

(* Unit and property tests for the succinct bit-level substrates. *)

open Sxsi_bits

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

let naive_rank1 bits i =
  let r = ref 0 in
  for k = 0 to i - 1 do
    if bits.(k) then incr r
  done;
  !r

let naive_select1 bits j =
  let seen = ref (-1) and res = ref (-1) in
  Array.iteri
    (fun p b ->
      if b then begin
        incr seen;
        if !seen = j then res := p
      end)
    bits;
  !res

(* ------------------------------------------------------------------ *)
(* Popcnt                                                               *)
(* ------------------------------------------------------------------ *)

let test_popcount_small () =
  Alcotest.(check int) "0" 0 (Popcnt.popcount 0);
  Alcotest.(check int) "1" 1 (Popcnt.popcount 1);
  Alcotest.(check int) "0xff" 8 (Popcnt.popcount 0xff);
  Alcotest.(check int) "max_int" 62 (Popcnt.popcount max_int)

let test_select_in_word () =
  (* word = bits 1, 5, 17, 40 *)
  let w = (1 lsl 1) lor (1 lsl 5) lor (1 lsl 17) lor (1 lsl 40) in
  Alcotest.(check int) "j=0" 1 (Popcnt.select_in_word w 0);
  Alcotest.(check int) "j=1" 5 (Popcnt.select_in_word w 1);
  Alcotest.(check int) "j=2" 17 (Popcnt.select_in_word w 2);
  Alcotest.(check int) "j=3" 40 (Popcnt.select_in_word w 3)

let prop_popcount =
  qtest "popcount matches naive" QCheck2.Gen.(int_bound max_int) (fun x ->
      let rec naive v = if v = 0 then 0 else (v land 1) + naive (v lsr 1) in
      Popcnt.popcount x = naive x)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                               *)
(* ------------------------------------------------------------------ *)

let bits_gen =
  QCheck2.Gen.(list_size (int_range 0 700) bool |> map Array.of_list)

let build_bv bits = Bitvec.of_fun (Array.length bits) (fun i -> bits.(i))

let test_bitvec_basic () =
  let bits = Array.init 200 (fun i -> i mod 3 = 0) in
  let bv = build_bv bits in
  Alcotest.(check int) "length" 200 (Bitvec.length bv);
  Alcotest.(check int) "count" 67 (Bitvec.count bv);
  Alcotest.(check bool) "get 0" true (Bitvec.get bv 0);
  Alcotest.(check bool) "get 1" false (Bitvec.get bv 1);
  Alcotest.(check int) "rank1 200" 67 (Bitvec.rank1 bv 200);
  Alcotest.(check int) "rank0 200" 133 (Bitvec.rank0 bv 200);
  Alcotest.(check int) "select1 0" 0 (Bitvec.select1 bv 0);
  Alcotest.(check int) "select1 66" 198 (Bitvec.select1 bv 66)

let test_bitvec_empty () =
  let bv = Bitvec.of_fun 0 (fun _ -> false) in
  Alcotest.(check int) "length" 0 (Bitvec.length bv);
  Alcotest.(check int) "rank1" 0 (Bitvec.rank1 bv 0);
  Alcotest.(check int) "count" 0 (Bitvec.count bv)

let test_bitvec_all_ones () =
  let bv = Bitvec.of_fun 313 (fun _ -> true) in
  Alcotest.(check int) "count" 313 (Bitvec.count bv);
  for j = 0 to 312 do
    Alcotest.(check int) "select1" j (Bitvec.select1 bv j)
  done

let test_bitvec_push_run () =
  let b = Bitvec.Builder.create () in
  Bitvec.Builder.push_run b false 100;
  Bitvec.Builder.push_run b true 3;
  Bitvec.Builder.push_run b false 500;
  Bitvec.Builder.push b true;
  let bv = Bitvec.Builder.finish b in
  Alcotest.(check int) "length" 604 (Bitvec.length bv);
  Alcotest.(check int) "count" 4 (Bitvec.count bv);
  Alcotest.(check int) "select1 0" 100 (Bitvec.select1 bv 0);
  Alcotest.(check int) "select1 3" 603 (Bitvec.select1 bv 3)

let prop_rank1 =
  qtest "rank1 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ok = ref true in
      for i = 0 to Array.length bits do
        if Bitvec.rank1 bv i <> naive_rank1 bits i then ok := false
      done;
      !ok)

let prop_select1 =
  qtest "select1 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ones = Bitvec.count bv in
      let ok = ref true in
      for j = 0 to ones - 1 do
        if Bitvec.select1 bv j <> naive_select1 bits j then ok := false
      done;
      !ok)

let prop_select0 =
  qtest "select0 matches naive" bits_gen (fun bits ->
      let bv = build_bv bits in
      let zeros = Array.length bits - Bitvec.count bv in
      let inv = Array.map not bits in
      let ok = ref true in
      for j = 0 to zeros - 1 do
        if Bitvec.select0 bv j <> naive_select1 inv j then ok := false
      done;
      !ok)

let prop_rank_select_inverse =
  qtest "rank1 (select1 j) = j" bits_gen (fun bits ->
      let bv = build_bv bits in
      let ok = ref true in
      for j = 0 to Bitvec.count bv - 1 do
        let p = Bitvec.select1 bv j in
        if Bitvec.rank1 bv p <> j || not (Bitvec.get bv p) then ok := false
      done;
      !ok)

let prop_next1 =
  qtest "next1 matches scan" bits_gen (fun bits ->
      let bv = build_bv bits in
      let n = Array.length bits in
      let naive i =
        let rec go p = if p >= n then -1 else if bits.(p) then p else go (p + 1) in
        go i
      in
      let ok = ref true in
      for i = 0 to n do
        if Bitvec.next1 bv i <> naive i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Intvec                                                               *)
(* ------------------------------------------------------------------ *)

let test_intvec_basic () =
  let iv = Intvec.make 100 7 in
  for i = 0 to 99 do
    Intvec.set iv i (i mod 128)
  done;
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i mod 128) (Intvec.get iv i)
  done

let test_intvec_straddle () =
  (* width 40 guarantees word straddling *)
  let iv = Intvec.make 20 40 in
  let v i = (i * 123456789) land ((1 lsl 40) - 1) in
  for i = 0 to 19 do
    Intvec.set iv i (v i)
  done;
  for i = 0 to 19 do
    Alcotest.(check int) "get" (v i) (Intvec.get iv i)
  done

let test_intvec_overwrite () =
  let iv = Intvec.make 10 9 in
  Intvec.set iv 3 511;
  Intvec.set iv 3 17;
  Alcotest.(check int) "after overwrite" 17 (Intvec.get iv 3);
  Alcotest.(check int) "neighbour untouched" 0 (Intvec.get iv 2);
  Alcotest.(check int) "neighbour untouched" 0 (Intvec.get iv 4)

let prop_intvec =
  qtest "of_array round-trips"
    QCheck2.Gen.(list_size (int_range 0 300) (int_bound 100000) |> map Array.of_list)
    (fun a ->
      if Array.length a = 0 then true
      else begin
        let iv = Intvec.of_array a in
        let ok = ref true in
        Array.iteri (fun i v -> if Intvec.get iv i <> v then ok := false) a;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Sparse                                                               *)
(* ------------------------------------------------------------------ *)

let sorted_gen =
  (* random subset of [0, 2000) *)
  QCheck2.Gen.(
    list_size (int_range 0 200) (int_bound 1999)
    |> map (fun l ->
           List.sort_uniq compare l |> Array.of_list))

let test_sparse_basic () =
  let a = [| 3; 17; 100; 101; 999 |] in
  let s = Sparse.of_sorted ~universe:1000 a in
  Alcotest.(check int) "length" 5 (Sparse.length s);
  Array.iteri (fun i v -> Alcotest.(check int) "get" v (Sparse.get s i)) a;
  Alcotest.(check int) "rank 0" 0 (Sparse.rank s 0);
  Alcotest.(check int) "rank 4" 1 (Sparse.rank s 4);
  Alcotest.(check int) "rank 101" 3 (Sparse.rank s 101);
  Alcotest.(check int) "rank 1000" 5 (Sparse.rank s 1000);
  Alcotest.(check bool) "mem 100" true (Sparse.mem s 100);
  Alcotest.(check bool) "mem 102" false (Sparse.mem s 102);
  Alcotest.(check int) "next 102" 999 (Sparse.next s 102);
  Alcotest.(check int) "next 1000" (-1) (Sparse.next s 1000);
  Alcotest.(check int) "prev 100" 17 (Sparse.prev s 100);
  Alcotest.(check int) "prev 3" (-1) (Sparse.prev s 3)

let test_sparse_empty () =
  let s = Sparse.of_sorted ~universe:100 [||] in
  Alcotest.(check int) "length" 0 (Sparse.length s);
  Alcotest.(check int) "rank" 0 (Sparse.rank s 50);
  Alcotest.(check int) "next" (-1) (Sparse.next s 0)

let test_sparse_dense () =
  let a = Array.init 500 (fun i -> i) in
  let s = Sparse.of_sorted ~universe:500 a in
  for i = 0 to 499 do
    Alcotest.(check int) "get" i (Sparse.get s i);
    Alcotest.(check int) "rank" i (Sparse.rank s i)
  done

let prop_sparse_get =
  qtest "get matches source array" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let ok = ref true in
      Array.iteri (fun i v -> if Sparse.get s i <> v then ok := false) a;
      !ok)

let prop_sparse_rank =
  qtest "rank matches naive" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let naive i = Array.fold_left (fun acc v -> if v < i then acc + 1 else acc) 0 a in
      let ok = ref true in
      for i = 0 to 2000 do
        if Sparse.rank s i <> naive i then ok := false
      done;
      !ok)

let prop_sparse_next =
  qtest "next matches naive" sorted_gen (fun a ->
      let s = Sparse.of_sorted ~universe:2000 a in
      let naive i =
        match Array.to_list a |> List.filter (fun v -> v >= i) with
        | [] -> -1
        | v :: _ -> v
      in
      let ok = ref true in
      for i = 0 to 2000 do
        if Sparse.next s i <> naive i then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Wavelet                                                              *)
(* ------------------------------------------------------------------ *)

let string_gen =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 500))

let naive_count s c =
  String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 s

let test_wavelet_basic () =
  let s = "abracadabra" in
  let w = Wavelet.of_string s in
  Alcotest.(check int) "length" 11 (Wavelet.length w);
  Alcotest.(check int) "count a" 5 (Wavelet.count w 'a');
  Alcotest.(check int) "count b" 2 (Wavelet.count w 'b');
  Alcotest.(check int) "count z" 0 (Wavelet.count w 'z');
  String.iteri
    (fun i c -> Alcotest.(check char) "access" c (Wavelet.access w i))
    s;
  Alcotest.(check int) "rank a 5" 2 (Wavelet.rank w 'a' 5);
  Alcotest.(check int) "select a 2" 5 (Wavelet.select w 'a' 2);
  Alcotest.(check int) "rank z 11" 0 (Wavelet.rank w 'z' 11)

let test_wavelet_single_symbol () =
  let w = Wavelet.of_string "aaaa" in
  Alcotest.(check int) "count" 4 (Wavelet.count w 'a');
  Alcotest.(check char) "access" 'a' (Wavelet.access w 2);
  Alcotest.(check int) "rank" 3 (Wavelet.rank w 'a' 3);
  Alcotest.(check int) "select" 2 (Wavelet.select w 'a' 2)

let test_wavelet_empty () =
  let w = Wavelet.of_string "" in
  Alcotest.(check int) "length" 0 (Wavelet.length w);
  Alcotest.(check int) "rank" 0 (Wavelet.rank w 'x' 0)

let prop_wavelet_access =
  qtest "access reproduces string" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      String.iteri (fun i c -> if Wavelet.access w i <> c then ok := false) s;
      !ok)

let prop_wavelet_rank =
  qtest "rank matches naive" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      List.iter
        (fun c ->
          for i = 0 to String.length s do
            let naive = naive_count (String.sub s 0 i) c in
            if Wavelet.rank w c i <> naive then ok := false
          done)
        [ 'a'; '\000'; '\255'; 'Z' ];
      (* also check ranks of characters actually present *)
      if String.length s > 0 then begin
        let c = s.[String.length s / 2] in
        for i = 0 to String.length s do
          if Wavelet.rank w c i <> naive_count (String.sub s 0 i) c then ok := false
        done
      end;
      !ok)

let prop_wavelet_select =
  qtest "rank/select inverse" string_gen (fun s ->
      let w = Wavelet.of_string s in
      let ok = ref true in
      String.iter
        (fun c ->
          for j = 0 to Wavelet.count w c - 1 do
            let p = Wavelet.select w c j in
            if Wavelet.rank w c p <> j || Wavelet.access w p <> c then ok := false
          done)
        "ab\000\255";
      !ok)

(* ------------------------------------------------------------------ *)
(* Int_wavelet                                                          *)
(* ------------------------------------------------------------------ *)

let iw_gen =
  QCheck2.Gen.(list_size (int_range 0 200) (int_bound 20) |> map Array.of_list)

let test_int_wavelet_basic () =
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3 |] in
  let w = Int_wavelet.of_array ~sigma:10 a in
  Alcotest.(check int) "length" 10 (Int_wavelet.length w);
  Array.iteri
    (fun i v -> Alcotest.(check int) "access" v (Int_wavelet.access w i))
    a;
  Alcotest.(check int) "rank 1 at 4" 2 (Int_wavelet.rank_value w 1 4);
  Alcotest.(check int) "range_count" 3
    (Int_wavelet.range_count w ~lo:2 ~hi:8 ~vlo:2 ~vhi:6);
  Alcotest.(check (list int)) "range_report" [ 2; 4; 5 ]
    (Int_wavelet.range_report w ~lo:2 ~hi:8 ~vlo:2 ~vhi:6);
  Alcotest.(check (list int)) "empty ranges" []
    (Int_wavelet.range_report w ~lo:5 ~hi:5 ~vlo:0 ~vhi:10)

let prop_int_wavelet_access =
  qtest "int wavelet access" iw_gen (fun a ->
      let w = Int_wavelet.of_array ~sigma:21 a in
      let ok = ref true in
      Array.iteri (fun i v -> if Int_wavelet.access w i <> v then ok := false) a;
      !ok)

let prop_int_wavelet_range =
  qtest ~count:100 "int wavelet range queries" iw_gen (fun a ->
      let w = Int_wavelet.of_array ~sigma:21 a in
      let naive_count lo hi vlo vhi =
        let c = ref 0 in
        for i = max 0 lo to min (Array.length a) hi - 1 do
          if a.(i) >= vlo && a.(i) < vhi then incr c
        done;
        !c
      in
      let naive_report lo hi vlo vhi =
        let s = ref [] in
        for i = max 0 lo to min (Array.length a) hi - 1 do
          if a.(i) >= vlo && a.(i) < vhi then s := a.(i) :: !s
        done;
        List.sort_uniq compare !s
      in
      let ok = ref true in
      List.iter
        (fun (lo, hi, vlo, vhi) ->
          if Int_wavelet.range_count w ~lo ~hi ~vlo ~vhi <> naive_count lo hi vlo vhi
          then ok := false;
          if Int_wavelet.range_report w ~lo ~hi ~vlo ~vhi <> naive_report lo hi vlo vhi
          then ok := false)
        [ (0, Array.length a, 0, 21); (1, 7, 3, 9); (0, 3, 0, 1); (2, 100, 10, 21);
          (5, 2, 0, 21); (0, Array.length a, 20, 21) ];
      !ok)

let suite =
  ( "bits",
    [
      Alcotest.test_case "popcount small" `Quick test_popcount_small;
      Alcotest.test_case "select_in_word" `Quick test_select_in_word;
      Alcotest.test_case "bitvec basic" `Quick test_bitvec_basic;
      Alcotest.test_case "bitvec empty" `Quick test_bitvec_empty;
      Alcotest.test_case "bitvec all ones" `Quick test_bitvec_all_ones;
      Alcotest.test_case "bitvec push_run" `Quick test_bitvec_push_run;
      Alcotest.test_case "intvec basic" `Quick test_intvec_basic;
      Alcotest.test_case "intvec straddle" `Quick test_intvec_straddle;
      Alcotest.test_case "intvec overwrite" `Quick test_intvec_overwrite;
      Alcotest.test_case "sparse basic" `Quick test_sparse_basic;
      Alcotest.test_case "sparse empty" `Quick test_sparse_empty;
      Alcotest.test_case "sparse dense" `Quick test_sparse_dense;
      Alcotest.test_case "wavelet basic" `Quick test_wavelet_basic;
      Alcotest.test_case "wavelet single symbol" `Quick test_wavelet_single_symbol;
      Alcotest.test_case "wavelet empty" `Quick test_wavelet_empty;
      prop_popcount;
      prop_rank1;
      prop_select1;
      prop_select0;
      prop_rank_select_inverse;
      prop_next1;
      prop_intvec;
      prop_sparse_get;
      prop_sparse_rank;
      prop_sparse_next;
      prop_wavelet_access;
      prop_wavelet_rank;
      prop_wavelet_select;
      Alcotest.test_case "int wavelet basic" `Quick test_int_wavelet_basic;
      prop_int_wavelet_access;
      prop_int_wavelet_range;
    ] )

(* End-to-end integration: every query battery from the paper's
   evaluation section, run over small instances of the synthetic
   corpora, must agree with the naive DOM oracle in every strategy. *)

open Sxsi_core
open Sxsi_xml
open Sxsi_baseline

let parse = Sxsi_xpath.Xpath_parser.parse

let check_corpus name xml queries ?funs ?dom_funs () =
  let doc = Document.of_xml xml in
  let dom = Dom.of_xml xml in
  List.iter
    (fun (id, q) ->
      let expected = Naive_eval.eval_ids ?funs:dom_funs dom (parse q) in
      let c = Engine.prepare doc q in
      let got = Array.to_list (Engine.select_preorders ?funs c) in
      if got <> expected then
        Alcotest.failf "%s/%s: engine %d results, oracle %d (first diff at %s)" name id
          (List.length got) (List.length expected)
          (match
             List.find_opt (fun x -> not (List.mem x expected)) got
           with
          | Some x -> string_of_int x
          | None -> "missing elements");
      let td =
        Array.to_list (Engine.select_preorders ?funs ~strategy:Engine.Top_down c)
      in
      if td <> expected then Alcotest.failf "%s/%s: top-down differs" name id;
      let n = Engine.count ?funs c in
      if n <> List.length expected then
        Alcotest.failf "%s/%s: count %d <> %d" name id n (List.length expected))
    queries

let xmark_queries =
  [
    ("X01", "/site/regions");
    ("X02", "/site/regions/*/item");
    ("X03", "/site/closed_auctions/closed_auction/annotation/description/text/keyword");
    ("X04", "//listitem//keyword");
    ("X05", "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date");
    ("X06", "/site/closed_auctions/closed_auction[.//keyword]/date");
    ("X07", "/site/people/person[profile/gender and profile/age]/name");
    ("X08", "/site/people/person[phone or homepage]/name");
    ("X09", "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name");
    ("X10", "//listitem[not(.//keyword/emph)]//parlist");
    ("X11", "//listitem[(.//keyword or .//emph) and (.//emph or .//bold)]/parlist");
    ("X12", "//people[.//person[not(address)] and .//person[not(watches)]]/person[watches]");
    ("X13", "/*[.//*]");
    ("X14", "//*");
    ("X15", "//*//*");
    ("X16", "//*//*//*");
    ("X17", "//*//*//*//*");
    ("A1", "/descendant::*/attribute::*");
    ("A2", "//person[@id = 'person3']/name");
    ("A3", "//seller/@person");
  ]

let treebank_queries =
  [
    ("T01", "//NP");
    ("T02", "//S[.//VP and .//NP]/VP/PP[IN]/NP/VBN");
    ("T03", "//NP[.//JJ or .//CC]");
    ("T04", "//CC[not(.//JJ)]");
    ("T05", "//NN[.//VBZ or .//IN]/*[.//NN or .//_QUOTE_]");
  ]

let medline_queries =
  [
    ("M01", "//Article[.//AbstractText[contains(., \"foot\") or contains(., \"feet\")]]");
    ("M02", "//Article[.//AbstractText[contains(., \"plus\")]]");
    ("M03", "//Article[.//AbstractText[contains(., \"plus\") or contains(., \"for\")]]");
    ("M04", "//Article[.//AbstractText[contains(., \"plus\") and not(contains(., \"for\"))]]");
    ("M05", "//MedlineCitation/Article/AuthorList/Author[./LastName[starts-with(., \"Bar\")]]");
    ("M06", "//*[.//LastName[contains(., \"Nguyen\")]]");
    ("M07", "//*//AbstractText[contains(., \"epididymis\")]");
    ("M08", "//*[.//PublicationType[ends-with(., \"Article\")]]");
    ("M09", "//MedlineCitation[.//Country[contains(., \"AUSTRALIA\")]]");
    ("M10", "//MedlineCitation[contains(., \"blood\")]");
    ("M11", "//*/*[contains(., \"1999\")]");
  ]

let test_xmark () =
  check_corpus "xmark" (Sxsi_datagen.Xmark.generate ~scale:80 ()) xmark_queries ()

let test_treebank () =
  check_corpus "treebank" (Sxsi_datagen.Treebank.generate ~sentences:60 ())
    treebank_queries ()

let test_medline () =
  check_corpus "medline" (Sxsi_datagen.Medline.generate ~citations:80 ())
    medline_queries ()

let test_word_queries () =
  let xml = Sxsi_datagen.Wiki.generate ~pages:60 () in
  let doc = Document.of_xml xml in
  let widx = Sxsi_wordindex.Word_index.build (Document.texts doc) in
  let funs key =
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some
        {
          Run.cp_match = (fun s -> Sxsi_wordindex.Word_index.matches_text widx phrase s);
          cp_texts = Some (fun () -> Sxsi_wordindex.Word_index.contains_phrase widx phrase);
        }
    | _ -> None
  in
  let dom_funs key =
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some
        (fun node ->
          Sxsi_wordindex.Word_index.matches_text widx phrase (Dom.string_value node))
    | _ -> None
  in
  check_corpus "wiki" xml
    [
      ("W06", "//text[ftcontains(., 'dark horse')]");
      ("W07", "//text[ftcontains(., 'horse') and ftcontains(., 'princess')]");
      ("W08", "//page/child::title[ftcontains(., 'crude oil')]");
      ("W09", "//page[.//text[ftcontains(., 'played on a board')]]/title");
      ("W10", "//page[.//text[ftcontains(., 'dark') and ftcontains(., 'gold')]]/title");
    ]
    ~funs ~dom_funs ()

let test_pssm_queries () =
  let xml = Sxsi_datagen.Bio.generate ~genes:12 () in
  let funs = Sxsi_bio.Pssm.registry Sxsi_bio.Pssm.sample_matrices in
  let dom_funs key =
    List.find_map
      (fun (m, threshold) ->
        if key = "PSSM:" ^ Sxsi_bio.Pssm.name m then
          Some
            (fun node ->
              Sxsi_bio.Pssm.matches m ~threshold (Dom.string_value node))
        else None)
      Sxsi_bio.Pssm.sample_matrices
  in
  check_corpus "bio" xml
    [
      ("P1", "//promoter[PSSM(., M1)]");
      ("P2", "//exon[.//sequence[PSSM(., M1)]]");
      ("P3", "//*[PSSM(., M1)]");
      ("P4", "//gene[.//promoter[PSSM(., M2)]]/name");
    ]
    ~funs ~dom_funs ()

(* serialization equivalence across engines on a whole corpus *)
let test_serialize_equivalence () =
  let xml = Sxsi_datagen.Xmark.generate ~scale:25 () in
  let doc = Document.of_xml xml in
  let dom = Dom.of_xml xml in
  List.iter
    (fun q ->
      let nodes = Engine.select (Engine.prepare doc q) in
      let dom_nodes = Naive_eval.eval dom (parse q) in
      let a = Array.to_list (Array.map (Document.serialize doc) nodes) in
      let b = List.map Dom.serialize dom_nodes in
      if a <> b then Alcotest.failf "serializations differ for %s" q)
    [ "//keyword"; "/site/people/person[phone]"; "//item/name"; "//listitem" ]

let suite =
  ( "integration",
    [
      Alcotest.test_case "xmark X01-X17 + attributes" `Quick test_xmark;
      Alcotest.test_case "treebank T01-T05" `Quick test_treebank;
      Alcotest.test_case "medline M01-M11" `Quick test_medline;
      Alcotest.test_case "wiki word queries" `Quick test_word_queries;
      Alcotest.test_case "bio PSSM queries" `Quick test_pssm_queries;
      Alcotest.test_case "serialization equivalence" `Quick test_serialize_equivalence;
    ] )

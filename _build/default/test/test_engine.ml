(* The decisive correctness tests: the SXSI engine (in every
   configuration and strategy) must select exactly the same nodes as
   the naive DOM oracle, on hand-written documents, on the paper's
   query shapes, and on random document x random query pairs. *)

open Sxsi_core
open Sxsi_xml
open Sxsi_baseline

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let parse = Sxsi_xpath.Xpath_parser.parse

(* Engine ids vs oracle ids for one (xml, query) pair, across engine
   configurations. *)
let configs () =
  [
    ("all-opt", Run.default_config ());
    ("no-jump", { (Run.default_config ()) with Run.enable_jump = false });
    ("early", { (Run.default_config ()) with Run.enable_early = true });
    ("no-memo", { (Run.default_config ()) with Run.enable_memo = false });
    ( "naive",
      {
        (Run.default_config ()) with
        Run.enable_jump = false;
        enable_memo = false;
        enable_early = false;
      } );
  ]

let check_query ?funs ?(dom_funs : (string -> Naive_eval.custom option) option) xml
    query =
  let doc = Document.of_xml xml in
  let dom = Dom.of_xml xml in
  let expected = Naive_eval.eval_ids ?funs:dom_funs dom (parse query) in
  let c = Engine.prepare doc query in
  let failures = ref [] in
  List.iter
    (fun (name, config) ->
      let got =
        Array.to_list (Engine.select_preorders ~config ?funs ~strategy:Engine.Top_down c)
      in
      if got <> expected then failures := (name, got) :: !failures;
      let n = Engine.count ~config ?funs ~strategy:Engine.Top_down c in
      if n <> List.length expected then failures := (name ^ "-count", [ n ]) :: !failures)
    (configs ());
  (match Engine.bottom_up_plan c with
  | Some _ ->
    let got = Array.to_list (Engine.select_preorders ?funs ~strategy:Engine.Bottom_up c) in
    if got <> expected then failures := ("bottom-up", got) :: !failures
  | None -> ());
  (* Auto strategy *)
  let got = Array.to_list (Engine.select_preorders ?funs c) in
  if got <> expected then failures := ("auto", got) :: !failures;
  match !failures with
  | [] -> ()
  | (name, got) :: _ ->
    Alcotest.failf "query %s: %s selected [%s], oracle [%s]" query name
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int expected))

(* ------------------------------------------------------------------ *)
(* Hand-written documents                                               *)
(* ------------------------------------------------------------------ *)

let site_xml =
  "<site><people><person id=\"p1\"><name>Alice</name><phone>123</phone>\
   <address><city>Springfield</city></address></person>\
   <person id=\"p2\"><name>Bob</name><homepage>hp</homepage></person>\
   <person id=\"p3\"><name>Carol</name><phone>99</phone><watches/></person></people>\
   <regions><item>x</item><item>y<keyword>gold</keyword></item>\
   <listitem><parlist><listitem><keyword>deep<emph>e1</emph></keyword></listitem>\
   </parlist></listitem><listitem><keyword>top</keyword></listitem></regions></site>"

let nested_xml =
  "<r><a><a><b>one</b><a><b>two</b></a></a></a><a><b>three</b></a><b>four</b></r>"

let mixed_xml =
  "<doc><p>hello <b>bold</b> world</p><p>plain</p><q>hello world</q>\
   <p lang=\"en\">attr<i>ibute</i></p></doc>"

let queries_site =
  [
    "/site";
    "/site/people/person";
    "/site/people/person/name";
    "/site/people/person[phone]/name";
    "/site/people/person[phone or homepage]/name";
    "/site/people/person[address and (phone or homepage)]/name";
    "/site/people/person[not(phone)]";
    "//person[watches]";
    "//keyword";
    "//listitem//keyword";
    "//listitem[.//keyword/emph]";
    "//listitem[not(.//keyword/emph)]";
    "//item/following-sibling::listitem";
    "//person/following-sibling::person[phone]";
    "//*";
    "//*//*";
    "//*//*//*";
    "/*[.//*]";
    "//text()";
    "//node()";
    "//@id";
    "//person[@id = 'p2']/name";
    "/descendant::*/attribute::*";
    "//person[name = 'Bob']";
    "//name[starts-with(., 'Car')]";
    "//name[ends-with(., 'ce')]";
    "//keyword[contains(., 'ol')]";
    "//person[contains(name, 'aro')]";
    "//name[. = 'Alice']";
    "//name[. <= 'Bob']";
    "//city[contains(., 'Spring')]";
    "//nonexistent";
    "//person[nonexistent]";
    "//keyword[contains(., 'zzz')]";
    "/";
  ]

let queries_nested =
  [
    "//a";
    "//a//b";
    "//a/b";
    "//a//a";
    "//a//a//b";
    "//a[b]";
    "//a[.//b]/b";
    "//b[contains(., 'o')]";
    "//a[not(b)]";
    "//b";
    "//a/a/b";
  ]

let queries_mixed =
  [
    "//p";
    "//p[contains(., 'hello world')]";
    "//q[contains(., 'hello world')]";
    "//p[contains(., 'bold')]";
    "//p[. = 'plain']";
    "//p[@lang = 'en']";
    "//p[b]";
    "//p/text()";
    "//text()[contains(., 'hello')]";
    "//p[contains(text(), 'plain')]";
  ]

let unit_cases =
  List.concat
    [
      List.mapi
        (fun i q ->
          Alcotest.test_case (Printf.sprintf "site %d: %s" i q) `Quick (fun () ->
              check_query site_xml q))
        queries_site;
      List.mapi
        (fun i q ->
          Alcotest.test_case (Printf.sprintf "nested %d: %s" i q) `Quick (fun () ->
              check_query nested_xml q))
        queries_nested;
      List.mapi
        (fun i q ->
          Alcotest.test_case (Printf.sprintf "mixed %d: %s" i q) `Quick (fun () ->
              check_query mixed_xml q))
        queries_mixed;
    ]

(* ------------------------------------------------------------------ *)
(* Custom predicates                                                    *)
(* ------------------------------------------------------------------ *)

let test_custom_pred () =
  let funs = function
    | "LONGER:3" -> Some (Run.simple_fun (fun s -> String.length s > 3))
    | _ -> None
  in
  let dom_funs = function
    | "LONGER:3" -> Some (fun n -> String.length (Dom.string_value n) > 3)
    | _ -> None
  in
  check_query ~funs ~dom_funs site_xml "//name[LONGER(., '3')]";
  check_query ~funs ~dom_funs site_xml "//person[LONGER(name, '3')]"

(* ------------------------------------------------------------------ *)
(* Bottom-up strategy specifics                                         *)
(* ------------------------------------------------------------------ *)

let test_bottom_up_plan_shapes () =
  let doc = Document.of_xml site_xml in
  let has_plan q = Engine.bottom_up_plan (Engine.prepare doc q) <> None in
  Alcotest.(check bool) "selective contains" true (has_plan "//name[contains(., 'x')]");
  Alcotest.(check bool) "equality" true (has_plan "//city[. = 'Springfield']");
  Alcotest.(check bool) "text target" true (has_plan "//text()[contains(., 'x')]");
  (* keyword under listitem has an emph child somewhere: not PCDATA-only *)
  Alcotest.(check bool) "non-pcdata tag" false (has_plan "//keyword[contains(., 'x')]");
  Alcotest.(check bool) "intermediate filter" false
    (has_plan "//person[phone]/name[contains(., 'x')]");
  Alcotest.(check bool) "structural pred" false (has_plan "//person[name]");
  Alcotest.(check bool) "star target" false (has_plan "//*[contains(., 'x')]");
  Alcotest.(check bool) "attribute value" true (has_plan "//person[@id = 'p2']");
  Alcotest.(check bool) "attribute target" true (has_plan "//@id[starts-with(., 'p')]")

let test_auto_strategy_picks_bottom_up () =
  let doc = Document.of_xml site_xml in
  let c = Engine.prepare doc "//name[. = 'Bob']" in
  Alcotest.(check bool) "picks bottom-up" true (Engine.chosen_strategy c = `Bottom_up)

let test_strategy_forced_error () =
  let doc = Document.of_xml site_xml in
  let c = Engine.prepare doc "//person[name]" in
  Alcotest.check_raises "no bottom-up shape"
    (Invalid_argument "Engine: query has no bottom-up shape") (fun () ->
      ignore (Engine.count ~strategy:Engine.Bottom_up c))

(* ------------------------------------------------------------------ *)
(* Stats and optimization behaviour                                     *)
(* ------------------------------------------------------------------ *)

let test_jump_visits_less () =
  let doc = Document.of_xml site_xml in
  let c = Engine.prepare doc "//keyword" in
  let run_with jump =
    let stats = Run.fresh_stats () in
    let config = { (Run.default_config ()) with Run.enable_jump = jump; stats } in
    ignore (Engine.count ~config ~strategy:Engine.Top_down c);
    stats
  in
  let with_jump = run_with true and without = run_with false in
  Alcotest.(check bool) "fewer visits with jumping" true
    (with_jump.Run.visited < without.Run.visited);
  Alcotest.(check bool) "jumps recorded" true (with_jump.Run.jumps > 0)

let test_memo_hits () =
  let doc = Document.of_xml site_xml in
  (* //* now collects in O(1) without visiting; use a child chain *)
  let c = Engine.prepare doc "/site/people/person[phone]/name" in
  let stats = Run.fresh_stats () in
  let config = { (Run.default_config ()) with Run.stats = stats } in
  ignore (Engine.count ~config ~strategy:Engine.Top_down c);
  Alcotest.(check bool) "memo hits recorded" true (stats.Run.memo_hits > 0)

let test_union_queries () =
  let doc = Document.of_xml site_xml in
  let dom = Dom.of_xml site_xml in
  List.iter
    (fun q ->
      let expected =
        Naive_eval.eval_union_ids dom (Sxsi_xpath.Xpath_parser.parse_union q)
      in
      let got = Array.to_list (Engine.select_preorders (Engine.prepare doc q)) in
      if got <> expected then Alcotest.failf "union %s differs" q;
      Alcotest.(check int) (q ^ " count") (List.length expected)
        (Engine.count (Engine.prepare doc q)))
    [
      "//phone | //homepage";
      "//keyword | //listitem//keyword";        (* overlapping branches *)
      "//* | //person";                          (* subsumption *)
      "//name[. = 'Bob'] | //name[. = 'Alice'] | //nonexistent";
      "/site/people/person[phone]/name | //item";
    ]

let test_serialize_results () =
  let doc = Document.of_xml site_xml in
  let c = Engine.prepare doc "//keyword" in
  let buf = Buffer.create 64 in
  let n = Engine.serialize_to buf c in
  Alcotest.(check int) "three results" 3 n;
  Alcotest.(check string) "serialized"
    "<keyword>gold</keyword><keyword>deep<emph>e1</emph></keyword><keyword>top</keyword>"
    (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Random documents x random queries vs the oracle                      *)
(* ------------------------------------------------------------------ *)

let tag_pool = [ "a"; "b"; "c"; "d" ]

let gen_xml : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let rec elem depth =
    let* name = oneofl tag_pool in
    let* attrs =
      frequency
        [ (3, return []); (1, map (fun v -> [ ("k", v) ]) (oneofl [ "u"; "v" ])) ]
    in
    let* kids =
      if depth >= 3 then return []
      else
        list_size (int_range 0 3)
          (frequency
             [
               (2, map (fun t -> `T t) (oneofl [ "x"; "yy"; "xyz"; "zz" ]));
               (3, map (fun e -> `E e) (elem (depth + 1)));
             ])
    in
    let buf = Buffer.create 64 in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter (fun (a, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" a v)) attrs;
    if kids = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter
        (function `T t -> Buffer.add_string buf t | `E e -> Buffer.add_string buf e)
        kids;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end;
    return (Buffer.contents buf)
  in
  elem 0

let gen_query : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let test =
    frequency
      [
        (5, oneofl tag_pool);
        (1, return "*");
        (1, return "text()");
        (1, return "node()");
      ]
  in
  let pred =
    frequency
      [
        (3, map (fun t -> t) test);
        (2, map (fun t -> ".//" ^ t) test);
        ( 2,
          let* t = oneofl [ "."; "a"; "b" ] in
          let* lit = oneofl [ "x"; "y"; "xyz"; "" ] in
          let* f = oneofl [ "contains"; "starts-with"; "ends-with" ] in
          return (Printf.sprintf "%s(%s, \"%s\")" f t lit) );
        ( 1,
          let* t = oneofl [ "."; "a" ] in
          let* lit = oneofl [ "x"; "xyz" ] in
          return (Printf.sprintf "%s = \"%s\"" t lit) );
        (1, return "@k");
        (1, return "@k = \"u\"");
        (1, map (fun t -> Printf.sprintf "not(%s)" t) test);
        ( 1,
          let* a = test and* b = test in
          oneofl
            [ Printf.sprintf "%s and %s" a b; Printf.sprintf "%s or %s" a b ] );
      ]
  in
  let step =
    let* sep = oneofl [ "/"; "//" ] in
    let* axis = frequency [ (8, return ""); (1, return "following-sibling::") ] in
    let* t = test in
    let* p = frequency [ (3, return ""); (2, map (fun p -> "[" ^ p ^ "]") pred) ] in
    (* following-sibling cannot follow "//" in the parser's fragment *)
    let sep = if axis <> "" then "/" else sep in
    return (sep ^ axis ^ t ^ p)
  in
  let* n = int_range 1 3 in
  let* steps = list_repeat n step in
  let* first = step in
  (* guarantee the first step has no explicit axis after / *)
  let first =
    if String.length first > 1 && first.[1] = 'f' then "//a" else first
  in
  return (String.concat "" (first :: steps))

let prop_engine_vs_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"engine = oracle on random doc x query"
       ~print:(fun (xml, query) -> Printf.sprintf "xml: %s\nquery: %s" xml query)
       QCheck2.Gen.(pair gen_xml gen_query)
       (fun (xml, query) ->
      let doc = Document.of_xml xml in
      let dom = Dom.of_xml xml in
      let path = parse query in
      let expected = Naive_eval.eval_ids dom path in
      let c = Engine.prepare_path doc path in
      let td =
        Array.to_list (Engine.select_preorders ~strategy:Engine.Top_down c)
      in
      let auto = Array.to_list (Engine.select_preorders c) in
      let naive_cfg =
        {
          (Run.default_config ()) with
          Run.enable_jump = false;
          enable_memo = false;
          enable_early = false;
        }
      in
      let naive =
        Array.to_list
          (Engine.select_preorders ~config:naive_cfg ~strategy:Engine.Top_down c)
      in
      let cnt = Engine.count ~strategy:Engine.Top_down c in
      td = expected && auto = expected && naive = expected
      && cnt = List.length expected))

let suite =
  ( "engine",
    unit_cases
    @ [
        Alcotest.test_case "custom predicate" `Quick test_custom_pred;
        Alcotest.test_case "bottom-up plan shapes" `Quick test_bottom_up_plan_shapes;
        Alcotest.test_case "auto picks bottom-up" `Quick
          test_auto_strategy_picks_bottom_up;
        Alcotest.test_case "forced strategy error" `Quick test_strategy_forced_error;
        Alcotest.test_case "jumping visits fewer nodes" `Quick test_jump_visits_less;
        Alcotest.test_case "memoization hits" `Quick test_memo_hits;
        Alcotest.test_case "serialize results" `Quick test_serialize_results;
        Alcotest.test_case "union queries" `Quick test_union_queries;
        prop_engine_vs_oracle;
      ] )

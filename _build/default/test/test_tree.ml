(* Balanced-parentheses tree and tag index vs a naive pointer tree. *)

open Sxsi_tree

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Random tree generator: a tree as nested lists, rendered both to a   *)
(* parenthesis sequence and to a naive structure.                      *)
(* ------------------------------------------------------------------ *)

type ntree = Node of int * ntree list   (* tag, children *)

let rec ntree_gen depth =
  QCheck2.Gen.(
    if depth = 0 then map (fun tg -> Node (tg, [])) (int_bound 3)
    else
      let* tg = int_bound 3 in
      let* kids = list_size (int_range 0 3) (ntree_gen (depth - 1)) in
      return (Node (tg, kids)))

let tree_gen = ntree_gen 4

let render root =
  (* parenthesis bools + aligned tags + preorder list of (pos, tag) *)
  let parens = ref [] and tags = ref [] in
  let rec go (Node (tg, kids)) =
    parens := true :: !parens;
    tags := tg :: !tags;
    List.iter go kids;
    parens := false :: !parens;
    tags := tg :: !tags
  in
  go root;
  ( Array.of_list (List.rev !parens),
    Array.of_list (List.rev !tags) )

let build root =
  let parens, tags = render root in
  let bp = Bp.of_bools parens in
  let ti = Tag_index.build bp ~tag_count:4 ~tags in
  (bp, ti)

(* Naive mirrors over the bool array. *)
let naive_close parens i =
  let d = ref 0 and res = ref (-1) in
  (try
     for j = i to Array.length parens - 1 do
       d := !d + (if parens.(j) then 1 else -1);
       if !d = 0 then begin
         res := j;
         raise Exit
       end
     done
   with Exit -> ());
  !res

let naive_parent parens i =
  let rec up j depth =
    if j < 0 then -1
    else begin
      let depth = depth + (if parens.(j) then -1 else 1) in
      if depth < 0 then j else up (j - 1) depth
    end
  in
  up (i - 1) 0

(* ------------------------------------------------------------------ *)
(* Unit tests on the paper's running example                            *)
(* ------------------------------------------------------------------ *)

(* Figure 1 tree shape: & ( parts ( part ( @ ( name ( % ) ) ) (#) (color (#))
   (stock (#)) ) ( part ( @ ( name ( % ) ) ) (stock (#)) ) ) *)
let fig1_parens =
  "((((((  ))) ( ) (( )) (( )) ) ((((  ))) (( )) ) ))"
  |> String.to_seq
  |> Seq.filter (fun c -> c = '(' || c = ')')
  |> Seq.map (fun c -> c = '(')
  |> Array.of_seq

let test_fig1_shape () =
  let bp = Bp.of_bools fig1_parens in
  Alcotest.(check int) "17 nodes" 17 (Bp.node_count bp);
  Alcotest.(check int) "root" 0 (Bp.root bp);
  Alcotest.(check int) "root close" (Bp.length bp - 1) (Bp.close bp 0);
  Alcotest.(check int) "root subtree" 17 (Bp.subtree_size bp 0);
  let parts = Bp.first_child bp 0 in
  Alcotest.(check int) "parts subtree" 16 (Bp.subtree_size bp parts);
  let part1 = Bp.first_child bp parts in
  Alcotest.(check int) "part1 subtree" 9 (Bp.subtree_size bp part1);
  let part2 = Bp.next_sibling bp part1 in
  Alcotest.(check int) "part2 subtree" 6 (Bp.subtree_size bp part2);
  Alcotest.(check int) "no third sibling" (-1) (Bp.next_sibling bp part2);
  Alcotest.(check int) "parent of part2" parts (Bp.parent bp part2);
  Alcotest.(check bool) "ancestor" true (Bp.is_ancestor bp parts part2);
  Alcotest.(check bool) "not ancestor" false (Bp.is_ancestor bp part1 part2);
  Alcotest.(check int) "depth part1" 3 (Bp.depth bp part1)

let test_preorder_roundtrip () =
  let bp = Bp.of_bools fig1_parens in
  for p = 0 to Bp.node_count bp - 1 do
    let x = Bp.node_of_preorder bp p in
    Alcotest.(check int) "preorder" p (Bp.preorder bp x)
  done

let test_builder_unbalanced () =
  Alcotest.check_raises "close on empty"
    (Invalid_argument "Bp.Builder.close_node: unbalanced") (fun () ->
      let b = Bp.Builder.create () in
      Bp.Builder.close_node b);
  Alcotest.check_raises "unclosed node"
    (Invalid_argument "Bp.Builder.finish: unbalanced") (fun () ->
      let b = Bp.Builder.create () in
      Bp.Builder.open_node b;
      ignore (Bp.Builder.finish b))

let test_single_node () =
  let bp = Bp.of_bools [| true; false |] in
  Alcotest.(check int) "nodes" 1 (Bp.node_count bp);
  Alcotest.(check bool) "leaf" true (Bp.is_leaf bp 0);
  Alcotest.(check int) "close" 1 (Bp.close bp 0);
  Alcotest.(check int) "parent" (-1) (Bp.parent bp 0);
  Alcotest.(check int) "first_child" (-1) (Bp.first_child bp 0)

(* Deep chain exercises the inter-block heap search. *)
let test_deep_chain () =
  let n = 2000 in
  let parens = Array.init (2 * n) (fun i -> i < n) in
  let bp = Bp.of_bools parens in
  Alcotest.(check int) "close of root" (2 * n - 1) (Bp.close bp 0);
  Alcotest.(check int) "close of deepest" n (Bp.close bp (n - 1));
  Alcotest.(check int) "parent of deepest" (n - 2) (Bp.parent bp (n - 1));
  Alcotest.(check int) "open of last" 0 (Bp.open_ bp (2 * n - 1));
  Alcotest.(check int) "depth" n (Bp.depth bp (n - 1))

let test_wide_tree () =
  let n = 3000 in
  let b = Bp.Builder.create () in
  Bp.Builder.open_node b;
  for _ = 1 to n do
    Bp.Builder.open_node b;
    Bp.Builder.close_node b
  done;
  Bp.Builder.close_node b;
  let bp = Bp.Builder.finish b in
  (* walk all siblings *)
  let count = ref 0 and x = ref (Bp.first_child bp 0) in
  while !x >= 0 do
    incr count;
    x := Bp.next_sibling bp !x
  done;
  Alcotest.(check int) "sibling walk" n !count

(* ------------------------------------------------------------------ *)
(* Properties: Bp navigation vs naive scans                             *)
(* ------------------------------------------------------------------ *)

let prop_close =
  qtest "close matches naive" tree_gen (fun t ->
      let parens, _ = render t in
      let bp = Bp.of_bools parens in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen && Bp.close bp i <> naive_close parens i then ok := false)
        parens;
      !ok)

let prop_open =
  qtest "open_ inverts close" tree_gen (fun t ->
      let parens, _ = render t in
      let bp = Bp.of_bools parens in
      let ok = ref true in
      Array.iteri
        (fun i isopen -> if isopen && Bp.open_ bp (Bp.close bp i) <> i then ok := false)
        parens;
      !ok)

let prop_parent =
  qtest "parent matches naive" tree_gen (fun t ->
      let parens, _ = render t in
      let bp = Bp.of_bools parens in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen && Bp.parent bp i <> naive_parent parens i then ok := false)
        parens;
      !ok)

let prop_children_partition =
  qtest "children partition the subtree" tree_gen (fun t ->
      let parens, _ = render t in
      let bp = Bp.of_bools parens in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen then begin
            let sum = ref 1 and c = ref (Bp.first_child bp i) in
            while !c >= 0 do
              sum := !sum + Bp.subtree_size bp !c;
              c := Bp.next_sibling bp !c
            done;
            if !sum <> Bp.subtree_size bp i then ok := false
          end)
        parens;
      !ok)

(* ------------------------------------------------------------------ *)
(* Tag index                                                            *)
(* ------------------------------------------------------------------ *)

let naive_tagged_desc parens tags i tg =
  let c = naive_close parens i in
  let res = ref (-1) in
  (try
     for j = i + 1 to c - 1 do
       if parens.(j) && tags.(j) = tg then begin
         res := j;
         raise Exit
       end
     done
   with Exit -> ());
  !res

let naive_tagged_foll parens tags i tg =
  let c = naive_close parens i in
  let res = ref (-1) in
  (try
     for j = c + 1 to Array.length parens - 1 do
       if parens.(j) && tags.(j) = tg then begin
         res := j;
         raise Exit
       end
     done
   with Exit -> ());
  !res

let naive_subtree_tags parens tags i tg =
  let c = naive_close parens i in
  let count = ref 0 in
  for j = i to c do
    if parens.(j) && tags.(j) = tg then incr count
  done;
  !count

let naive_tagged_prec parens tags i tg =
  let res = ref (-1) in
  for j = 0 to i - 1 do
    if parens.(j) && tags.(j) = tg && not (naive_close parens j > i) then res := j
  done;
  !res

let prop_tagged_desc =
  qtest "tagged_desc matches naive" tree_gen (fun t ->
      let parens, tags = render t in
      let bp, ti = build t in
      ignore bp;
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen then
            for tg = 0 to 3 do
              if Tag_index.tagged_desc ti i tg <> naive_tagged_desc parens tags i tg
              then ok := false
            done)
        parens;
      !ok)

let prop_tagged_foll =
  qtest "tagged_foll matches naive" tree_gen (fun t ->
      let parens, tags = render t in
      let _, ti = build t in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen then
            for tg = 0 to 3 do
              if Tag_index.tagged_foll ti i tg <> naive_tagged_foll parens tags i tg
              then ok := false
            done)
        parens;
      !ok)

let prop_tagged_prec =
  qtest "tagged_prec matches naive" tree_gen (fun t ->
      let parens, tags = render t in
      let _, ti = build t in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen then
            for tg = 0 to 3 do
              if Tag_index.tagged_prec ti i tg <> naive_tagged_prec parens tags i tg
              then ok := false
            done)
        parens;
      !ok)

let prop_subtree_tags =
  qtest "subtree_tags matches naive" tree_gen (fun t ->
      let parens, tags = render t in
      let _, ti = build t in
      let ok = ref true in
      Array.iteri
        (fun i isopen ->
          if isopen then
            for tg = 0 to 3 do
              if Tag_index.subtree_tags ti i tg <> naive_subtree_tags parens tags i tg
              then ok := false
            done)
        parens;
      !ok)

let test_tag_basic () =
  (* (a (b) (c (b)) ) with tags a=0 b=1 c=2 *)
  let parens = [| true; true; false; true; true; false; false; false |] in
  let tags = [| 0; 1; 1; 2; 1; 1; 2; 0 |] in
  let bp = Bp.of_bools parens in
  let ti = Tag_index.build bp ~tag_count:3 ~tags in
  Alcotest.(check int) "count b" 2 (Tag_index.count ti 1);
  Alcotest.(check int) "tag of root" 0 (Tag_index.tag ti 0);
  Alcotest.(check int) "tagged_desc b from root" 1 (Tag_index.tagged_desc ti 0 1);
  Alcotest.(check int) "tagged_desc b from c" 4 (Tag_index.tagged_desc ti 3 1);
  Alcotest.(check int) "tagged_foll b from first b" 4 (Tag_index.tagged_foll ti 1 1);
  Alcotest.(check int) "subtree_tags b at root" 2 (Tag_index.subtree_tags ti 0 1);
  Alcotest.(check int) "tagged_next" 3 (Tag_index.tagged_next ti 2 2)

(* ------------------------------------------------------------------ *)
(* Tag_rel                                                              *)
(* ------------------------------------------------------------------ *)

let test_tag_rel () =
  let r = Tag_rel.make ~tag_count:5 in
  Tag_rel.add r Tag_rel.Child ~parent:0 ~child:3;
  Tag_rel.add r Tag_rel.Descendant ~parent:0 ~child:3;
  Tag_rel.add r Tag_rel.Descendant ~parent:0 ~child:4;
  Alcotest.(check bool) "child 0->3" true (Tag_rel.mem r Tag_rel.Child 0 3);
  Alcotest.(check bool) "child 0->4" false (Tag_rel.mem r Tag_rel.Child 0 4);
  Alcotest.(check bool) "desc 0->4" true (Tag_rel.mem r Tag_rel.Descendant 0 4);
  Alcotest.(check bool) "foll empty" false (Tag_rel.mem r Tag_rel.Following 0 3);
  Alcotest.(check bool) "can_occur" true
    (Tag_rel.can_occur r Tag_rel.Descendant 0 (fun b -> b = 4));
  Alcotest.(check bool) "can_occur false" false
    (Tag_rel.can_occur r Tag_rel.Descendant 0 (fun b -> b = 2))

let suite =
  ( "tree",
    [
      Alcotest.test_case "fig1 shape" `Quick test_fig1_shape;
      Alcotest.test_case "preorder roundtrip" `Quick test_preorder_roundtrip;
      Alcotest.test_case "builder rejects unbalanced" `Quick test_builder_unbalanced;
      Alcotest.test_case "single node" `Quick test_single_node;
      Alcotest.test_case "deep chain" `Quick test_deep_chain;
      Alcotest.test_case "wide tree" `Quick test_wide_tree;
      Alcotest.test_case "tag index basic" `Quick test_tag_basic;
      Alcotest.test_case "tag_rel" `Quick test_tag_rel;
      prop_close;
      prop_open;
      prop_parent;
      prop_children_partition;
      prop_tagged_desc;
      prop_tagged_foll;
      prop_tagged_prec;
      prop_subtree_tags;
    ] )

(* XPath Core+ parser tests: every query family used in the paper's
   evaluation section must parse, plus precise AST checks and error
   cases. *)

open Sxsi_xpath
open Ast

let step ?(preds = []) axis test = { axis; test; preds }
let path steps = { absolute = true; steps }

let check_ast name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = Xpath_parser.parse src in
      if got <> expected then
        Alcotest.failf "parsed %s as %s, expected %s" src (path_to_string got)
          (path_to_string expected))

let check_parses name src =
  Alcotest.test_case name `Quick (fun () ->
      ignore (Xpath_parser.parse src))

let check_rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Xpath_parser.parse src with
      | exception Xpath_parser.Parse_error _ -> ()
      | p -> Alcotest.failf "expected failure, parsed %s" (path_to_string p))

let ast_cases =
  [
    check_ast "child chain" "/site/regions"
      (path [ step Child (Name "site"); step Child (Name "regions") ]);
    check_ast "double slash" "//listitem//keyword"
      (path [ step Descendant (Name "listitem"); step Descendant (Name "keyword") ]);
    check_ast "star step" "/site/regions/*/item"
      (path
         [
           step Child (Name "site");
           step Child (Name "regions");
           step Child Star;
           step Child (Name "item");
         ]);
    check_ast "verbose axes" "/descendant::listitem/child::keyword"
      (path [ step Descendant (Name "listitem"); step Child (Name "keyword") ]);
    check_ast "descendant after //" "//descendant::a"
      (path [ step Descendant (Name "a") ]);
    check_ast "attribute abbreviation" "/a/@href"
      (path [ step Child (Name "a"); step Attribute (Name "href") ]);
    check_ast "// before attribute" "//@id"
      (path [ step Descendant Node; step Attribute (Name "id") ]);
    check_ast "text node test" "//text()" (path [ step Descendant Text ]);
    check_ast "attribute star" "/descendant::*/attribute::*"
      (path [ step Descendant Star; step Attribute Star ]);
    check_ast "simple filter" "//a[b]"
      (path
         [
           step Descendant (Name "a")
             ~preds:[ Exists { absolute = false; steps = [ step Child (Name "b") ] } ];
         ]);
    check_ast "dot-descendant filter" "//a[.//b]"
      (path
         [
           step Descendant (Name "a")
             ~preds:
               [ Exists { absolute = false; steps = [ step Descendant (Name "b") ] } ];
         ]);
    check_ast "boolean filter" "//a[b and (c or not(d))]"
      (path
         [
           step Descendant (Name "a")
             ~preds:
               [
                 And
                   ( Exists { absolute = false; steps = [ step Child (Name "b") ] },
                     Or
                       ( Exists { absolute = false; steps = [ step Child (Name "c") ] },
                         Not
                           (Exists
                              { absolute = false; steps = [ step Child (Name "d") ] })
                       ) );
               ];
         ]);
    check_ast "contains on dot" "//a[contains(., \"xy\")]"
      (path
         [
           step Descendant (Name "a")
             ~preds:[ Value ({ absolute = false; steps = [] }, Contains, "xy") ];
         ]);
    check_ast "equality" "//a[b = 'v']"
      (path
         [
           step Descendant (Name "a")
             ~preds:
               [
                 Value
                   ({ absolute = false; steps = [ step Child (Name "b") ] }, Eq, "v");
               ];
         ]);
    check_ast "custom function" "//promoter[PSSM(., M1)]"
      (path
         [
           step Descendant (Name "promoter")
             ~preds:[ Fun ("PSSM", { absolute = false; steps = [] }, "M1") ];
         ]);
    check_ast "root only" "/" (path []);
    check_ast "lexicographic" "//a[. <= 'm']"
      (path
         [
           step Descendant (Name "a")
             ~preds:
               [ Value ({ absolute = false; steps = [] }, Le, "m") ];
         ]);
  ]

(* Every query from the paper's Figures 9, 14, 16 and 18 must parse. *)
let paper_queries =
  [
    (* XMark X01-X17 *)
    "/site/regions";
    "/site/regions/*/item";
    "/site/closed_auctions/closed_auction/annotation/description/text/keyword";
    "//listitem//keyword";
    "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date";
    "/site/closed_auctions/closed_auction[.//keyword]/date";
    "/site/people/person[profile/gender and profile/age]/name";
    "/site/people/person[phone or homepage]/name";
    "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name";
    "//listitem[not(.//keyword/emph)]//parlist";
    "//listitem[(.//keyword or .//emph) and (.//emph or .//bold)]/parlist";
    "//people[.//person[not(address)] and .//person[not(watches)]]/person[watches]";
    "/*[.//*]";
    "//*";
    "//*//*";
    "//*//*//*";
    "//*//*//*//*";
    (* Treebank T01-T05 *)
    "//NP";
    "//S[.//VP and .//NP]/VP/PP[IN]/NP/VBN";
    "//NP[.//JJ or .//CC]";
    "//CC[not(.//JJ)]";
    "//NN[.//VBZ or .//IN]/*[.//NN or .//_QUOTE_]";
    (* Medline M01-M11 *)
    "//Article[.//AbstractText[contains(., \"foot\") or contains(., \"feet\")]]";
    "//Article[.//AbstractText[contains(., \"plus\")]]";
    "//Article[.//AbstractText[contains(., \"plus\") or contains(., \"for\")]]";
    "//Article[.//AbstractText[contains(., \"plus\") and not(contains(., \"for\"))]]";
    "//MedlineCitation/Article/AuthorList/Author[./LastName[starts-with(., \"Bar\")]]";
    "//*[.//LastName[contains(., \"Nguyen\")]]";
    "//*//AbstractText[contains(., \"epididymis\")]";
    "//*[.//PublicationType[ends-with(., \"Article\")]]";
    "//MedlineCitation[.//Country[contains(., \"AUSTRALIA\")]]";
    "//MedlineCitation[contains(., \"blood cell\")]";
    "//*/*[contains(., \"1999\")]";
    (* Word queries W01-W10 *)
    "//Article[.//AbstractText[contains(., \"blood sample\")]]";
    "//text[contains(., \"dark horse\")]";
    "//text[contains(., \"horse\") and contains(., \"princess\")]";
    "//page/child::title[contains(., \"crude oil\")]";
    "//page[.//text[contains(., \"played on a board\")]]/title";
    (* Bio queries *)
    "//promoter[PSSM(., M1)]";
    "//exon[.//sequence[PSSM(., M2)]]";
    "//*[PSSM(., M3)]";
  ]

let paper_cases =
  List.mapi (fun i q -> check_parses (Printf.sprintf "paper query %d" i) q) paper_queries

let reject_cases =
  [
    check_rejects "empty" "";
    check_rejects "relative at top" "a/b";
    check_rejects "unknown axis" "/ancestor::a";
    check_rejects "backward axis" "/preceding-sibling::a";
    check_rejects "unclosed bracket" "//a[b";
    check_rejects "unclosed paren" "//a[not(b]";
    check_rejects "unterminated literal" "//a[contains(., \"x)]";
    check_rejects "missing literal" "//a[b = c]";
    check_rejects "trailing input" "//a]";
    check_rejects "// before self" "/a//self::b";
    check_rejects "lone at" "/@";
  ]

let test_union_parse () =
  let paths = Xpath_parser.parse_union "//a | //b/c | /d" in
  Alcotest.(check int) "three branches" 3 (List.length paths);
  Alcotest.(check int) "single branch" 1
    (List.length (Xpath_parser.parse_union "//a"));
  (match Xpath_parser.parse "//a | //b" with
  | exception Xpath_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse must reject unions");
  (match Xpath_parser.parse_union "//a |" with
  | exception Xpath_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing pipe rejected");
  (match Xpath_parser.parse_union "//a[b | c]" with
  | exception Xpath_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "union inside predicate rejected")

let test_roundtrip_print () =
  (* path_to_string output reparses to the same AST *)
  List.iter
    (fun q ->
      let ast = Xpath_parser.parse q in
      let printed = "/" ^ path_to_string ast in
      (* printed form is verbose; strip the doubled leading slash *)
      let printed =
        if String.length printed > 1 && printed.[1] = '/' then
          String.sub printed 1 (String.length printed - 1)
        else printed
      in
      let reparsed = Xpath_parser.parse printed in
      if reparsed <> ast then Alcotest.failf "round-trip failed for %s (%s)" q printed)
    [
      "/site/regions";
      "//listitem//keyword";
      "/site/people/person[phone or homepage]/name";
      "//a[contains(., \"x\")]";
    ]

let suite =
  ( "xpath",
    ast_cases @ paper_cases @ reject_cases
    @ [
        Alcotest.test_case "union parsing" `Quick test_union_parse;
        Alcotest.test_case "print/reparse round-trip" `Quick test_roundtrip_print;
      ] )

(* Word-based index vs a naive word-level scanner. *)

open Sxsi_wordindex

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let texts =
  [|
    "the dark horse won the race";
    "a dark and stormy night";
    "the princess rode a horse";
    "crude oil prices";
    "oil and gas; crude oil again";
    "darkhorse is one word";
    "";
  |]

let idx () = Word_index.build texts

let test_basic () =
  let t = idx () in
  Alcotest.(check int) "doc_count" 7 (Word_index.doc_count t);
  Alcotest.(check (list int)) "dark horse" [ 0 ] (Word_index.contains_phrase t "dark horse");
  Alcotest.(check (list int)) "horse" [ 0; 2 ] (Word_index.contains_phrase t "horse");
  Alcotest.(check (list int)) "crude oil" [ 3; 4 ]
    (Word_index.contains_phrase t "crude oil");
  Alcotest.(check (list int)) "oil" [ 3; 4 ] (Word_index.contains_phrase t "oil");
  Alcotest.(check (list int)) "unknown" [] (Word_index.contains_phrase t "unicorn");
  Alcotest.(check (list int)) "empty" [] (Word_index.contains_phrase t "");
  Alcotest.(check int) "occurrences of oil" 3 (Word_index.phrase_occurrences t "oil");
  (* word boundaries: "darkhorse" must not match the phrase *)
  Alcotest.(check bool) "no partial word" true
    (not (List.mem 5 (Word_index.contains_phrase t "dark horse")))

let test_phrase_across_punctuation () =
  let t = idx () in
  (* "gas; crude" tokenizes to adjacent words *)
  Alcotest.(check (list int)) "across punctuation" [ 4 ]
    (Word_index.contains_phrase t "gas crude")

let test_matches_text () =
  let t = idx () in
  Alcotest.(check bool) "positive" true
    (Word_index.matches_text t "dark horse" "a very dark horse indeed");
  Alcotest.(check bool) "negative" false
    (Word_index.matches_text t "dark horse" "darkhorse");
  Alcotest.(check bool) "single" true (Word_index.matches_text t "oil" "crude oil!")

(* naive oracle *)
let naive_contains texts phrase =
  let toks s =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '.')
    |> List.filter (fun w -> w <> "")
  in
  let p = toks phrase in
  if p = [] then []
  else
    List.filteri (fun _ _ -> true) (Array.to_list texts)
    |> List.mapi (fun i s -> (i, toks s))
    |> List.filter_map (fun (i, ws) ->
           let pa = Array.of_list p and wa = Array.of_list ws in
           let m = Array.length pa and n = Array.length wa in
           let rec at k off = k = m || (wa.(off + k) = pa.(k) && at (k + 1) off) in
           let rec go off = off + m <= n && (at 0 off || go (off + 1)) in
           if go 0 then Some i else None)

let gen_texts =
  QCheck2.Gen.(
    list_size (int_range 1 10)
      (list_size (int_range 0 12) (oneofl [ "aa"; "bb"; "cc"; "dd" ])
      |> map (String.concat " "))
    |> map Array.of_list)

let gen_phrase =
  QCheck2.Gen.(
    list_size (int_range 1 3) (oneofl [ "aa"; "bb"; "cc"; "dd"; "zz" ])
    |> map (String.concat " "))

let prop_vs_naive =
  qtest "contains_phrase matches naive word scan"
    QCheck2.Gen.(pair gen_texts gen_phrase)
    (fun (texts, phrase) ->
      let t = Word_index.build texts in
      Word_index.contains_phrase t phrase = naive_contains texts phrase)

let prop_occurrence_counts =
  qtest "phrase_occurrences >= matching texts" gen_texts (fun texts ->
      let t = Word_index.build texts in
      List.for_all
        (fun p ->
          Word_index.phrase_occurrences t p
          >= Word_index.contains_phrase_count t p)
        [ "aa"; "bb"; "aa bb"; "cc dd" ])

let test_engine_integration () =
  (* plug the word index into the engine as an indexed custom pred *)
  let xml =
    "<w><page><title>one</title><text>the dark horse</text></page>\
     <page><title>two</title><text>a pale horse</text></page></w>"
  in
  let doc = Sxsi_xml.Document.of_xml xml in
  let widx = Word_index.build (Sxsi_xml.Document.texts doc) in
  let funs key =
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some
        {
          Sxsi_core.Run.cp_match = (fun s -> Word_index.matches_text widx phrase s);
          cp_texts = Some (fun () -> Word_index.contains_phrase widx phrase);
        }
    | _ -> None
  in
  let c = Sxsi_core.Engine.prepare doc "//page[.//text[ftcontains(., 'dark horse')]]/title" in
  Alcotest.(check int) "one page" 1 (Sxsi_core.Engine.count ~funs c);
  let c2 = Sxsi_core.Engine.prepare doc "//text[ftcontains(., 'horse')]" in
  Alcotest.(check int) "two texts" 2 (Sxsi_core.Engine.count ~funs c2)

let suite =
  ( "wordindex",
    [
      Alcotest.test_case "basic phrases" `Quick test_basic;
      Alcotest.test_case "across punctuation" `Quick test_phrase_across_punctuation;
      Alcotest.test_case "matches_text" `Quick test_matches_text;
      Alcotest.test_case "engine integration" `Quick test_engine_integration;
      prop_vs_naive;
      prop_occurrence_counts;
    ] )

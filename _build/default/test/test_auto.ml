(* Formula hash-consing and automaton compilation sanity tests. *)

open Sxsi_auto
open Sxsi_xml

let test_hash_consing () =
  let f1 = Formula.conj (Formula.down1 1) (Formula.down2 2) in
  let f2 = Formula.conj (Formula.down1 1) (Formula.down2 2) in
  Alcotest.(check bool) "physically equal" true (f1 == f2);
  Alcotest.(check bool) "ids equal" true (f1.Formula.id = f2.Formula.id);
  let f3 = Formula.conj (Formula.down2 2) (Formula.down1 1) in
  Alcotest.(check bool) "order matters structurally" false (f1 == f3)

let test_constant_folding () =
  Alcotest.(check bool) "T and x = x" true
    (Formula.conj Formula.tru (Formula.down1 1) == Formula.down1 1);
  Alcotest.(check bool) "F and x = F" true
    (Formula.conj Formula.fls (Formula.down1 1) == Formula.fls);
  Alcotest.(check bool) "T or x = T" true
    (Formula.disj Formula.tru (Formula.down1 1) == Formula.tru);
  Alcotest.(check bool) "not not via neg" true
    (Formula.neg Formula.tru == Formula.fls);
  Alcotest.(check bool) "x and x = x" true
    (Formula.conj (Formula.down1 3) (Formula.down1 3) == Formula.down1 3)

let test_atom_sets () =
  let f =
    Formula.conj
      (Formula.disj (Formula.down1 5) (Formula.down2 7))
      (Formula.conj (Formula.down1 3) Formula.mark)
  in
  Alcotest.(check (list int)) "down1" [ 3; 5 ] f.Formula.down1;
  Alcotest.(check (list int)) "down2" [ 7 ] f.Formula.down2;
  Alcotest.(check bool) "has_mark" true f.Formula.has_mark

let doc () =
  Document.of_xml
    "<site><listitem><keyword>k1<emph>e</emph></keyword></listitem>\
     <listitem><keyword>k2</keyword></listitem></site>"

let test_compile_shapes () =
  let d = doc () in
  let q = Sxsi_xpath.Xpath_parser.parse "//listitem//keyword[emph]" in
  let a = Compile.compile d q in
  (* start state has exactly one transition, guarded by the root tag *)
  let trs = Automaton.transitions a a.Automaton.start in
  Alcotest.(check int) "one start transition" 1 (List.length trs);
  (match trs with
  | [ { Automaton.guard = Formula.Tag t; _ } ] ->
    Alcotest.(check int) "guarded by &" Document.root_tag t
  | _ -> Alcotest.fail "unexpected start guard");
  (* scanning states registered with scan_info *)
  let scans =
    List.filter (fun q -> Automaton.scan_info a q <> None) a.Automaton.states
  in
  Alcotest.(check bool) "at least 3 scan states" true (List.length scans >= 3)

let test_compile_collect_flag () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword") in
  let collects =
    List.filter
      (fun q ->
        match Automaton.scan_info a q with
        | Some { Automaton.scan_collect = true; _ } -> true
        | _ -> false)
      a.Automaton.states
  in
  Alcotest.(check int) "one collect state" 1 (List.length collects);
  (* with a filter the state is not a pure collector *)
  let a2 = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword[emph]") in
  let collects2 =
    List.filter
      (fun q ->
        match Automaton.scan_info a2 q with
        | Some { Automaton.scan_collect = true; _ } -> true
        | _ -> false)
      a2.Automaton.states
  in
  Alcotest.(check int) "no collect state" 0 (List.length collects2)

let test_compile_unknown_tag () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//nonexistent") in
  (* the start transition formula collapses to true: no results, accept *)
  match Automaton.transitions a a.Automaton.start with
  | [ { Automaton.phi; _ } ] ->
    Alcotest.(check bool) "trivial formula" true (phi == Formula.tru)
  | _ -> Alcotest.fail "unexpected transitions"

let test_compile_pred_dedup () =
  let d = doc () in
  let a =
    Compile.compile d
      (Sxsi_xpath.Xpath_parser.parse
         "//keyword[contains(., \"x\") or contains(., \"x\")]")
  in
  Alcotest.(check int) "one predicate" 1 (Array.length a.Automaton.preds)

let test_compile_rejects_absolute_pred () =
  let d = doc () in
  match
    Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//keyword[/site/listitem]")
  with
  | exception Compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_to_string_smoke () =
  let d = doc () in
  let a = Compile.compile d (Sxsi_xpath.Xpath_parser.parse "//listitem[keyword]") in
  let s = Automaton.to_string a in
  Alcotest.(check bool) "mentions listitem" true
    (String.length s > 0
    &&
    let rec find i =
      i + 8 <= String.length s && (String.sub s i 8 = "listitem" || find (i + 1))
    in
    find 0)

let suite =
  ( "auto",
    [
      Alcotest.test_case "hash consing" `Quick test_hash_consing;
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "atom sets" `Quick test_atom_sets;
      Alcotest.test_case "compile shapes" `Quick test_compile_shapes;
      Alcotest.test_case "collect flag" `Quick test_compile_collect_flag;
      Alcotest.test_case "unknown tag" `Quick test_compile_unknown_tag;
      Alcotest.test_case "predicate dedup" `Quick test_compile_pred_dedup;
      Alcotest.test_case "absolute pred rejected" `Quick
        test_compile_rejects_absolute_pred;
      Alcotest.test_case "to_string" `Quick test_to_string_smoke;
    ] )

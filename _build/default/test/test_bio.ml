(* Run-length FM-index vs the plain FM-index, and PSSM scoring. *)

open Sxsi_bio

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rle_fm                                                               *)
(* ------------------------------------------------------------------ *)

let texts_gen =
  QCheck2.Gen.(
    list_size (int_range 1 8)
      (string_size ~gen:(map (fun i -> "ACGT".[i]) (int_bound 3)) (int_range 0 40))
    |> map Array.of_list)

let naive_count texts p =
  if String.length p = 0 then 0
  else
    Array.fold_left
      (fun acc t ->
        let m = String.length p and n = String.length t in
        let c = ref 0 in
        for i = 0 to n - m do
          if String.sub t i m = p then incr c
        done;
        acc + !c)
      0 texts

let test_rle_basic () =
  let texts = [| "AAAABBBB"; "AAAABBBB"; "AAAABBBB" |] in
  let t = Rle_fm.build texts in
  Alcotest.(check int) "doc_count" 3 (Rle_fm.doc_count t);
  Alcotest.(check int) "count AB" 3 (Rle_fm.count t "AB");
  Alcotest.(check int) "count AAAA" 3 (Rle_fm.count t "AAAA");
  Alcotest.(check int) "count AAA" 6 (Rle_fm.count t "AAA");
  Alcotest.(check int) "count absent" 0 (Rle_fm.count t "BA BA");
  (* repetitive collection => far fewer runs than symbols *)
  Alcotest.(check bool) "few runs" true (Rle_fm.run_count t < Rle_fm.length t / 2)

let test_rle_compression_on_repetitive () =
  let st = Random.State.make [| 3 |] in
  let base = String.init 400 (fun _ -> "ACGT".[Random.State.int st 4]) in
  let repetitive = Array.make 20 base in
  let unique =
    Array.init 20 (fun _ ->
        String.init 400 (fun _ -> "ACGT".[Random.State.int st 4]))
  in
  let r = Rle_fm.build repetitive and u = Rle_fm.build unique in
  Alcotest.(check bool) "repetitive has fewer runs" true
    (Rle_fm.run_count r < Rle_fm.run_count u);
  Alcotest.(check bool) "repetitive smaller" true
    (Rle_fm.space_bits r < Rle_fm.space_bits u)

let prop_rle_count =
  qtest "Rle_fm.count = Fm_index.count = naive" texts_gen (fun texts ->
      let r = Rle_fm.build texts in
      let fm = Sxsi_fm.Fm_index.build texts in
      List.for_all
        (fun p ->
          let c = Rle_fm.count r p in
          c = Sxsi_fm.Fm_index.count fm p && c = naive_count texts p)
        [ "A"; "C"; "AC"; "CA"; "AAA"; "ACGT"; "TTTT"; "GATTACA" ])

(* ------------------------------------------------------------------ *)
(* Pssm                                                                 *)
(* ------------------------------------------------------------------ *)

let uniform_counts width v = Array.init 4 (fun _ -> Array.make width v)

let test_pssm_scoring () =
  (* consensus ACGT: strong counts on the diagonal *)
  let counts = uniform_counts 4 1 in
  counts.(0).(0) <- 50;
  counts.(1).(1) <- 50;
  counts.(2).(2) <- 50;
  counts.(3).(3) <- 50;
  let m = Pssm.of_counts ~name:"TEST" counts in
  Alcotest.(check int) "width" 4 (Pssm.width m);
  Alcotest.(check bool) "consensus scores high" true (Pssm.score m "ACGT" 0 > 5.0);
  Alcotest.(check bool) "anti-consensus low" true (Pssm.score m "TGCA" 0 < 0.0);
  Alcotest.(check bool) "invalid base = -inf" true
    (Pssm.score m "ANGT" 0 = neg_infinity);
  Alcotest.(check bool) "matches inside" true
    (Pssm.matches m ~threshold:5.0 "TTTACGTTT");
  Alcotest.(check bool) "no match" false (Pssm.matches m ~threshold:5.0 "TTTTTTT");
  Alcotest.(check int) "two matches" 2
    (Pssm.count_matches m ~threshold:5.0 "ACGTACGT")

let test_pssm_rejects () =
  Alcotest.check_raises "3 rows" (Invalid_argument "Pssm.of_counts: need 4 rows")
    (fun () -> ignore (Pssm.of_counts ~name:"X" (Array.make 3 [| 1 |])));
  Alcotest.check_raises "ragged" (Invalid_argument "Pssm.of_counts: ragged rows")
    (fun () ->
      ignore (Pssm.of_counts ~name:"X" [| [| 1; 2 |]; [| 1 |]; [| 1; 2 |]; [| 1; 2 |] |]))

let test_pssm_engine_queries () =
  let xml = Sxsi_datagen.Bio.generate ~genes:15 () in
  let doc = Sxsi_xml.Document.of_xml xml in
  let funs = Pssm.registry Pssm.sample_matrices in
  List.iter
    (fun (m, _thr) ->
      let q = Printf.sprintf "//promoter[PSSM(., %s)]" (Pssm.name m) in
      let c = Sxsi_core.Engine.prepare doc q in
      let n = Sxsi_core.Engine.count ~funs c in
      let total = Sxsi_core.Engine.count (Sxsi_core.Engine.prepare doc "//promoter") in
      Alcotest.(check bool) "within bounds" true (n >= 0 && n <= total);
      (* consistency with the oracle *)
      let dom = Sxsi_baseline.Dom.of_xml xml in
      let thr = List.assoc m Pssm.sample_matrices in
      let dom_funs key =
        if key = "PSSM:" ^ Pssm.name m then
          Some
            (fun node ->
              Pssm.matches m ~threshold:thr (Sxsi_baseline.Dom.string_value node))
        else None
      in
      let expected =
        Sxsi_baseline.Naive_eval.eval_count ~funs:dom_funs dom
          (Sxsi_xpath.Xpath_parser.parse q)
      in
      Alcotest.(check int) (Pssm.name m) expected n)
    Pssm.sample_matrices;
  (* sample matrices have increasing selectivity M1 >= M2 >= M3 on //* *)
  let count_for nm =
    Sxsi_core.Engine.count ~funs
      (Sxsi_core.Engine.prepare doc (Printf.sprintf "//exon[.//sequence[PSSM(., %s)]]" nm))
  in
  Alcotest.(check bool) "ladder" true (count_for "M1" >= count_for "M3")

let suite =
  ( "bio",
    [
      Alcotest.test_case "rle basic" `Quick test_rle_basic;
      Alcotest.test_case "rle compresses repetition" `Quick
        test_rle_compression_on_repetitive;
      Alcotest.test_case "pssm scoring" `Quick test_pssm_scoring;
      Alcotest.test_case "pssm rejects bad input" `Quick test_pssm_rejects;
      Alcotest.test_case "pssm engine queries vs oracle" `Quick
        test_pssm_engine_queries;
      prop_rle_count;
    ] )

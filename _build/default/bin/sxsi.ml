(* The sxsi command-line tool: index an XML file in memory and run
   Core+ queries against it, inspect document statistics, or generate
   the synthetic benchmark corpora. *)

open Cmdliner
open Sxsi_xml
open Sxsi_core

let pp_bytes b =
  let f = float_of_int b in
  if f >= 1e6 then Printf.sprintf "%.2fMB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fKB" (f /. 1e3)
  else Printf.sprintf "%dB" b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document")

let query_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Core+ XPath query")

let drop_ws =
  Arg.(value & flag & info [ "drop-whitespace" ] ~doc:"Discard whitespace-only text nodes")

let no_jump =
  Arg.(value & flag & info [ "no-jump" ] ~doc:"Disable jumping to relevant nodes (§5.4.1)")

let no_memo =
  Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable transition memoization (§5.5.2)")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("auto", Engine.Auto); ("top-down", Engine.Top_down); ("bottom-up", Engine.Bottom_up) ]
  in
  Arg.(value & opt strategy_conv Engine.Auto & info [ "strategy" ] ~docv:"S"
         ~doc:"Evaluation strategy: auto, top-down or bottom-up")

let show_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics (visited/marked/jumps)")

let load_document ~keep_whitespace file =
  if Filename.check_suffix file ".sxsi" then Document.load file
  else Document.of_xml ~keep_whitespace (read_file file)

let with_engine file query drop_whitespace no_jump no_memo strategy stats_flag k =
  let doc = load_document ~keep_whitespace:(not drop_whitespace) file in
  let compiled = Engine.prepare doc query in
  let stats = Run.fresh_stats () in
  let config = { (Run.default_config ()) with Run.enable_jump = not no_jump; enable_memo = not no_memo; stats } in
  let t0 = Unix.gettimeofday () in
  k doc compiled config strategy;
  let dt = Unix.gettimeofday () -. t0 in
  if stats_flag then
    Printf.eprintf
      "time: %.3fms  strategy: %s  visited: %d  marked: %d  jumps: %d  memo hits: %d\n"
      (dt *. 1000.0)
      (match Engine.chosen_strategy ~strategy compiled with
      | `Top_down -> "top-down"
      | `Bottom_up -> "bottom-up")
      stats.Run.visited stats.Run.marked stats.Run.jumps stats.Run.memo_hits

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let count_cmd =
  let run file query dw nj nm strategy st =
    with_engine file query dw nj nm strategy st (fun _doc c config strategy ->
        Printf.printf "%d\n" (Engine.count ~config ~strategy c))
  in
  Cmd.v
    (Cmd.info "count" ~doc:"Count the nodes selected by a query")
    Term.(const run $ file_arg $ query_arg $ drop_ws $ no_jump $ no_memo $ strategy_arg
          $ show_stats)

let select_cmd =
  let ids =
    Arg.(value & flag & info [ "ids" ] ~doc:"Print preorder identifiers instead of XML")
  in
  let run file query dw nj nm strategy st ids =
    with_engine file query dw nj nm strategy st (fun doc c config strategy ->
        let nodes = Engine.select ~config ~strategy c in
        if ids then
          Array.iter (fun x -> Printf.printf "%d\n" (Document.preorder doc x)) nodes
        else
          Array.iter (fun x -> print_endline (Document.serialize doc x)) nodes)
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Materialize and serialize the nodes selected by a query")
    Term.(const run $ file_arg $ query_arg $ drop_ws $ no_jump $ no_memo $ strategy_arg
          $ show_stats $ ids)

let stats_cmd =
  let run file dw =
    let xml = read_file file in
    let t0 = Unix.gettimeofday () in
    let doc = Document.of_xml ~keep_whitespace:(not dw) xml in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "document:        %s\n" (pp_bytes (String.length xml));
    Printf.printf "index time:      %.2fs\n" dt;
    Printf.printf "nodes:           %d\n" (Document.node_count doc);
    Printf.printf "texts:           %d\n" (Document.text_count doc);
    Printf.printf "distinct tags:   %d\n" (Document.tag_count doc);
    Printf.printf "tree index:      %s\n" (pp_bytes (Document.tree_space_bits doc / 8));
    Printf.printf "text self-index: %s\n"
      (pp_bytes (Sxsi_text.Text_collection.fm_space_bits (Document.text doc) / 8));
    Printf.printf "index/document:  %.2f\n"
      (float_of_int ((Document.tree_space_bits doc / 8)
                     + (Sxsi_text.Text_collection.fm_space_bits (Document.text doc) / 8))
      /. float_of_int (String.length xml))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Index a document and report size statistics")
    Term.(const run $ file_arg $ drop_ws)

let index_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Index file to write (conventionally .sxsi)")
  in
  let run file dw out =
    let doc = Document.of_xml ~keep_whitespace:(not dw) (read_file file) in
    Document.save doc out;
    Printf.printf "indexed %d nodes, %d texts -> %s\n" (Document.node_count doc)
      (Document.text_count doc) out
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build the self-index and save it; count/select accept .sxsi files")
    Term.(const run $ file_arg $ drop_ws $ out)

let explain_cmd =
  let query_only =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Core+ XPath query")
  in
  let run file query =
    let doc = load_document ~keep_whitespace:true file in
    let c = Engine.prepare doc query in
    print_string (Sxsi_auto.Automaton.to_string (Engine.automaton c));
    (match Engine.bottom_up_plan c with
    | Some _ -> print_endline "bottom-up plan: available"
    | None -> print_endline "bottom-up plan: not applicable")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Print the compiled tree automaton for a query")
    Term.(const run $ file_arg $ query_only)

let repl_cmd =
  let run file dw =
    let t0 = Unix.gettimeofday () in
    let doc = load_document ~keep_whitespace:(not dw) file in
    Printf.printf "loaded %d nodes, %d texts in %.2fs\n"
      (Document.node_count doc) (Document.text_count doc)
      (Unix.gettimeofday () -. t0);
    print_endline
      "enter Core+ queries; prefix with 'count ' for counting only; ctrl-D quits";
    let rec loop () =
      print_string "sxsi> ";
      match read_line () with
      | exception End_of_file -> print_newline ()
      | "" -> loop ()
      | line ->
        let counting, query =
          if String.length line > 6 && String.sub line 0 6 = "count " then
            (true, String.sub line 6 (String.length line - 6))
          else (false, line)
        in
        (match Engine.prepare doc query with
        | exception Sxsi_xpath.Xpath_parser.Parse_error (pos, msg) ->
          Printf.printf "parse error at %d: %s\n" pos msg
        | exception Sxsi_auto.Compile.Unsupported msg ->
          Printf.printf "unsupported: %s\n" msg
        | c ->
          let t0 = Unix.gettimeofday () in
          if counting then begin
            let n = Engine.count c in
            Printf.printf "%d result(s) in %.2fms\n" n
              ((Unix.gettimeofday () -. t0) *. 1000.0)
          end
          else begin
            let nodes = Engine.select c in
            let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
            Array.iteri
              (fun i x ->
                if i < 10 then print_endline (Document.serialize doc x))
              nodes;
            if Array.length nodes > 10 then
              Printf.printf "... (%d more)\n" (Array.length nodes - 10);
            Printf.printf "%d result(s) in %.2fms\n" (Array.length nodes) dt
          end);
        loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Load a document once and run queries interactively")
    Term.(const run $ file_arg $ drop_ws)

let gen_cmd =
  let kind =
    Arg.(required & pos 0 (some (enum
      [ ("xmark", `Xmark); ("medline", `Medline); ("treebank", `Treebank);
        ("wiki", `Wiki); ("bio", `Bio) ])) None
      & info [] ~docv:"KIND" ~doc:"Corpus kind: xmark, medline, treebank, wiki or bio")
  in
  let scale =
    Arg.(value & opt int 1000 & info [ "scale" ] ~docv:"N" ~doc:"Corpus scale")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout by default)")
  in
  let run kind scale out =
    let xml =
      match kind with
      | `Xmark -> Sxsi_datagen.Xmark.generate ~scale ()
      | `Medline -> Sxsi_datagen.Medline.generate ~citations:scale ()
      | `Treebank -> Sxsi_datagen.Treebank.generate ~sentences:scale ()
      | `Wiki -> Sxsi_datagen.Wiki.generate ~pages:scale ()
      | `Bio -> Sxsi_datagen.Bio.generate ~genes:scale ()
    in
    match out with
    | None -> print_string xml
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc xml)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark corpus")
    Term.(const run $ kind $ scale $ out)

let () =
  let info =
    Cmd.info "sxsi" ~version:"1.0.0"
      ~doc:"Succinct XML Self-Index: in-memory XPath search over compressed indexes"
  in
  exit (Cmd.eval (Cmd.group info [ count_cmd; select_cmd; stats_cmd; gen_cmd; index_cmd; explain_cmd; repl_cmd ]))

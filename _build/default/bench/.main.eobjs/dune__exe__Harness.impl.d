bench/harness.ml: Array Buffer Gc List Printf String Sxsi_xml Unix

bench/main.mli:

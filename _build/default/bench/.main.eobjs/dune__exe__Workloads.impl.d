bench/workloads.ml: Document Dom Lazy List String Sxsi_baseline Sxsi_bio Sxsi_core Sxsi_datagen Sxsi_wordindex Sxsi_xml

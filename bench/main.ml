(* Benchmark harness regenerating every table and figure of the
   paper's evaluation section (§6) over the synthetic corpora.

   Usage:  dune exec bench/main.exe -- [section ...] [options]
   Sections: fig8 table2 table3 table4 table5 table6 fig10 fig11 fig12
             fig13 fig15 table7 fig18 streaming service par qos obs
             prof xmark bechamel (default: all except bechamel)
   Options:  --fast (single timed run)  --runs N  --scale F
             --json (also write BENCH_<section>.json per section)
             --probe (xmark: keep index probes installed while timing,
             to measure the instrumentation overhead)
             --profile (sample every section with the profiler and
             append a [profile] object to its BENCH json)

   Absolute numbers are machine- and substrate-dependent; the paper's
   reproduction targets are the SHAPES: which engine/strategy wins,
   by roughly what factor, and where cutoffs fall.  EXPERIMENTS.md
   records a reference run. *)

open Sxsi_xml
open Sxsi_core
open Sxsi_baseline
open Workloads
module H = Harness
module J = Sxsi_obs.Json

let parse_query = Sxsi_xpath.Xpath_parser.parse

(* ------------------------------------------------------------------ *)
(* Figure 8: indexing time / memory, index size vs document size       *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  H.section "Figure 8: indexing XMark documents of growing size";
  let rows =
    List.map
      (fun scale ->
        let scale = scaled scale in
        let xml = Sxsi_datagen.Xmark.generate ~scale () in
        Gc.compact ();
        let before = H.live_mb () in
        let doc, t = H.time_once (fun () -> Document.of_xml xml) in
        let after = H.live_mb () in
        let tree = Document.tree_space_bits doc / 8 in
        let text = Sxsi_text.Text_collection.fm_space_bits (Document.text doc) / 8 in
        (* loading time from disk, the paper's third row *)
        let path = Filename.temp_file "sxsi" ".idx" in
        let t_load =
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Document.save doc path;
              H.time (fun () -> Document.load path))
        in
        [
          H.pp_bytes (String.length xml);
          Printf.sprintf "%.2fs" t;
          Printf.sprintf "%.0fMB" (after -. before);
          H.pp_ms t_load;
          H.pp_bytes tree;
          H.pp_bytes text;
          Printf.sprintf "%.2f" (float_of_int (tree + text) /. float_of_int (String.length xml));
        ])
      [ 400; 800; 1600; 3200; 6400 ]
  in
  H.table
    [ "doc size"; "index time"; "mem delta"; "load time"; "tree index"; "FM index"; "index/doc" ]
    rows

(* ------------------------------------------------------------------ *)
(* Tables II and III: raw FM-index search times                        *)
(* ------------------------------------------------------------------ *)

let fm_table ~sample_rate () =
  H.section
    (Printf.sprintf
       "Table %s: FM-index search times over the Medline text collection (l = %d)"
       (if sample_rate = 64 then "II" else "III")
       sample_rate);
  let c = Lazy.force medline in
  let texts = Document.texts (Lazy.force c.doc) in
  let tc = Sxsi_text.Text_collection.build ~sample_rate ~contains_cutoff:max_int texts in
  let naive_time p =
    H.time (fun () -> Sxsi_text.Text_collection.contains_via tc Sxsi_text.Text_collection.Plain_scan p)
  in
  let rows =
    List.map
      (fun p ->
        let gc, gt =
          H.time_with_result (fun () -> Sxsi_text.Text_collection.global_count tc p)
        in
        let ids, ct =
          H.time_with_result (fun () ->
              Sxsi_text.Text_collection.contains_via tc Sxsi_text.Text_collection.Fm_locate p)
        in
        [
          p;
          string_of_int gc;
          H.pp_ms gt;
          string_of_int (List.length ids);
          H.pp_ms ct;
          H.pp_ms (naive_time p);
        ])
      fm_patterns
  in
  H.table
    [ "pattern"; "GlobalCount"; "time"; "ContainsCount"; "FM time"; "plain scan" ]
    rows;
  Printf.printf "FM-index: %s for %s of text\n"
    (H.pp_bytes (Sxsi_text.Text_collection.fm_space_bits tc / 8))
    (H.pp_bytes (Sxsi_text.Text_collection.total_length tc))

(* ------------------------------------------------------------------ *)
(* Table IV: construction times, pointer versus SXSI stores             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  H.section "Table IV: construction times, pointer vs SXSI tree store";
  let one (c : corpus) =
    let xml = c.xml in
    let t_parse =
      H.time (fun () ->
          Xml_parser.parse
            ~on_open:(fun _ _ -> ())
            ~on_close:(fun _ -> ())
            ~on_text:(fun _ -> ())
            xml)
    in
    let t_pointers = H.time (fun () -> Dom.of_xml xml) in
    (* parentheses alone *)
    let t_parens =
      H.time (fun () ->
          let b = Sxsi_tree.Bp.Builder.create () in
          Sxsi_tree.Bp.Builder.open_node b;
          Xml_parser.parse
            ~on_open:(fun _ attrs ->
              Sxsi_tree.Bp.Builder.open_node b;
              List.iter
                (fun _ ->
                  Sxsi_tree.Bp.Builder.open_node b;
                  Sxsi_tree.Bp.Builder.close_node b)
                attrs)
            ~on_close:(fun _ -> Sxsi_tree.Bp.Builder.close_node b)
            ~on_text:(fun _ -> ())
            xml;
          Sxsi_tree.Bp.Builder.close_node b;
          ignore (Sxsi_tree.Bp.Builder.finish b))
    in
    (* tag index alone, over the already-built parentheses (rebuilt from
       the backend-neutral tree so this phase benches regardless of the
       document's backend) *)
    let doc = Lazy.force c.doc in
    let tree = Document.tree doc in
    let bp =
      Sxsi_tree.Bp.of_bools
        (Array.init (Sxsi_tree.Tree_backend.length tree)
           (Sxsi_tree.Tree_backend.is_open tree))
    in
    let tags = Array.init (Sxsi_tree.Bp.length bp) (fun i -> Document.tag_of doc i) in
    let t_tags =
      H.time (fun () ->
          Sxsi_tree.Tag_index.build bp ~tag_count:(Document.tag_count doc) ~tags)
    in
    let texts = Document.texts doc in
    let t_fm = H.time (fun () -> Sxsi_text.Text_collection.build ~store_plain:false texts) in
    let t_full = H.time (fun () -> Document.of_xml xml) in
    [
      c.name;
      H.pp_bytes (String.length xml);
      H.pp_ms t_parse;
      H.pp_ms t_pointers;
      H.pp_ms t_parens;
      H.pp_ms t_tags;
      H.pp_ms t_fm;
      H.pp_ms t_full;
    ]
  in
  H.table
    [ "corpus"; "size"; "parse"; "pointers"; "parens"; "tags"; "FM build"; "full index" ]
    (List.map one [ Lazy.force xmark_small; Lazy.force treebank; Lazy.force medline ])

(* ------------------------------------------------------------------ *)
(* Table V: full traversals                                             *)
(* ------------------------------------------------------------------ *)

let table5 () =
  H.section "Table V: full traversal, pointer vs succinct tree";
  let one (c : corpus) =
    let doc = Lazy.force c.doc and dom = Lazy.force c.dom in
    let tree = Document.tree doc in
    let t_pointer = H.time (fun () -> Dom.count_all_nodes dom) in
    let rec sxsi_count x acc =
      if x = Document.nil then acc
      else
        sxsi_count (Sxsi_tree.Tree_backend.next_sibling tree x)
          (sxsi_count (Sxsi_tree.Tree_backend.first_child tree x) (acc + 1))
    in
    let t_sxsi = H.time (fun () -> sxsi_count (Document.root doc) 0) in
    let rec elem_count x acc =
      if x = Document.nil then acc
      else
        elem_count (Sxsi_tree.Tree_backend.next_sibling tree x)
          (elem_count (Sxsi_tree.Tree_backend.first_child tree x)
             (if Document.is_element doc x then acc + 1 else acc))
    in
    let t_elem = H.time (fun () -> elem_count (Document.root doc) 0) in
    let star = Engine.prepare doc "//*" in
    let t_star = H.time (fun () -> Engine.count ~strategy:Engine.Top_down star) in
    [
      c.name;
      string_of_int (Document.node_count doc);
      H.pp_ms t_pointer;
      H.pp_ms t_sxsi;
      Printf.sprintf "%.1fx" (t_sxsi /. t_pointer);
      H.pp_ms t_elem;
      H.pp_ms t_star;
    ]
  in
  H.table
    [ "corpus"; "nodes"; "pointer rec."; "SXSI rec."; "ratio"; "elem rec."; "//* (count)" ]
    (List.map one [ Lazy.force xmark_small; Lazy.force treebank; Lazy.force medline ])

(* ------------------------------------------------------------------ *)
(* Table VI: tagged traversals                                          *)
(* ------------------------------------------------------------------ *)

let table6 () =
  H.section "Table VI: tagged traversals over XMark (jump loop vs automaton)";
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  let tree = Document.tree doc in
  let rows =
    List.filter_map
      (fun tag_name ->
        match Document.tag_id doc tag_name with
        | None -> None
        | Some tg ->
          let t_jump =
            H.time (fun () ->
                let count = ref 0 and p = ref 0 in
                let rec go () =
                  let q = Sxsi_tree.Tree_backend.tagged_next tree !p tg in
                  if q >= 0 then begin
                    incr count;
                    p := q + 1;
                    go ()
                  end
                in
                go ();
                !count)
          in
          let q = Engine.prepare doc ("//" ^ tag_name) in
          let n, t_count =
            H.time_with_result (fun () -> Engine.count ~strategy:Engine.Top_down q)
          in
          let t_mat = H.time (fun () -> Engine.select ~strategy:Engine.Top_down q) in
          Some
            [
              tag_name;
              string_of_int n;
              H.pp_ms t_jump;
              H.pp_ms t_count;
              H.pp_ms t_mat;
            ])
      [ "category"; "date"; "listitem"; "keyword" ]
  in
  H.table [ "tag"; "#nodes"; "jump loop"; "//tag (count)"; "//tag (mat)" ] rows

(* ------------------------------------------------------------------ *)
(* Figures 10/11: query batteries, SXSI vs the pointer baseline         *)
(* ------------------------------------------------------------------ *)

let query_battery title (c : corpus) queries =
  H.section title;
  let doc = Lazy.force c.doc and dom = Lazy.force c.dom in
  Printf.printf "corpus %s: %s, %d nodes\n" c.name
    (H.pp_bytes (String.length c.xml))
    (Document.node_count doc);
  let rows =
    List.map
      (fun (id, q) ->
        let cq = Engine.prepare doc q in
        let pq = parse_query q in
        let n, t_count = H.time_with_result (fun () -> Engine.count cq) in
        let nb, tb_count = H.time_with_result (fun () -> Naive_eval.eval_count dom pq) in
        let t_mat = H.time (fun () -> Engine.select cq) in
        let serializable = n <= 200_000 in
        let t_ser =
          if serializable then
            H.time (fun () -> H.serialize_bytes doc (Engine.select cq))
          else infinity
        in
        let tb_ser =
          if serializable then
            H.time (fun () ->
                List.iter (fun nd -> ignore (Dom.serialize nd)) (Naive_eval.eval dom pq))
          else infinity
        in
        if n <> nb then
          Printf.printf "!! %s: engines disagree (%d vs %d)\n" id n nb;
        [
          id;
          string_of_int n;
          H.pp_ms t_count;
          H.pp_ms tb_count;
          Printf.sprintf "%.1fx" (tb_count /. t_count);
          H.pp_ms t_mat;
          (if serializable then H.pp_ms t_ser else "+++");
          (if serializable then H.pp_ms tb_ser else "+++");
        ])
      queries
  in
  H.table
    [
      "query"; "results"; "SXSI count"; "base count"; "speedup"; "SXSI mat";
      "SXSI mat+ser"; "base mat+ser";
    ]
    rows

let fig10 () =
  query_battery "Figure 10: XMark queries X01-X17 (small document)"
    (Lazy.force xmark_small) xmark_queries;
  query_battery "Figure 10: XMark queries X01-X17 (large document)"
    (Lazy.force xmark_large) xmark_queries

let fig11 () =
  query_battery "Figure 11: Treebank queries T01-T05" (Lazy.force treebank)
    treebank_queries

(* ------------------------------------------------------------------ *)
(* Figure 12: optimization ablation                                     *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  H.section "Figure 12: impact of jumping and memoization (counting, X01-X17)";
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  let run_with q jump memo early =
    let config =
      {
        Run.enable_jump = jump;
        enable_memo = memo;
        enable_early = early;
        stats = Run.fresh_stats ();
      }
    in
    H.time (fun () -> Engine.count ~config ~strategy:Engine.Top_down q)
  in
  let rows =
    List.map
      (fun (id, q) ->
        (* raw translation: the figure ablates the engine's own jumping
           and memoization, so the whole-query optimizer (which plants
           extra jump sets) is kept out of the comparison *)
        let cq = Engine.prepare ~optimize:false doc q in
        let naive = run_with cq false false false in
        let jump_only = run_with cq true false false in
        let memo_only = run_with cq false true false in
        let no_early = run_with cq true true false in
        let all_opt = run_with cq true true true in
        [
          id;
          H.pp_ms naive;
          H.pp_ms jump_only;
          H.pp_ms memo_only;
          H.pp_ms no_early;
          H.pp_ms all_opt;
          Printf.sprintf "%.0fx" (naive /. all_opt);
        ])
      xmark_queries
  in
  H.table
    [ "query"; "naive"; "jump only"; "memo only"; "jump+memo"; "+early eval"; "gain" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 13: memory use and node-visit precision                       *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  H.section "Figure 13: visited / marked / result nodes and memory (X01-X17)";
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  let rows =
    List.map
      (fun (id, q) ->
        (* unoptimized automaton: the paper's per-query visit counts *)
        let cq = Engine.prepare ~optimize:false doc q in
        let stats = Run.fresh_stats () in
        let config = { (Run.default_config ()) with Run.stats = stats } in
        Gc.compact ();
        let before = Gc.allocated_bytes () in
        let nodes = Engine.select ~config ~strategy:Engine.Top_down cq in
        let allocated = Gc.allocated_bytes () -. before in
        [
          id;
          string_of_int stats.Run.visited;
          string_of_int stats.Run.marked;
          string_of_int (Array.length nodes);
          string_of_int stats.Run.jumps;
          Printf.sprintf "%.1fMB" (allocated /. 1e6);
        ])
      xmark_queries
  in
  H.table [ "query"; "visited"; "marked"; "results"; "jumps"; "allocated" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 15 (and Figure 14's strategy column): Medline text queries    *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  H.section "Figure 15: Medline text queries M01-M11";
  let c = Lazy.force medline in
  let doc = Lazy.force c.doc and dom = Lazy.force c.dom in
  let rows =
    List.map
      (fun (id, q) ->
        let cq = Engine.prepare doc q in
        let strategy =
          match Engine.chosen_strategy cq with `Bottom_up -> "up" | `Top_down -> "down"
        in
        let n, t = H.time_with_result (fun () -> Engine.count cq) in
        let nb, tb = H.time_with_result (fun () -> Naive_eval.eval_count dom (parse_query q)) in
        if n <> nb then Printf.printf "!! %s: engines disagree (%d vs %d)\n" id n nb;
        let text_t, auto_t =
          match Engine.bottom_up_plan cq with
          | Some plan when strategy = "up" ->
            let tt, _ = Bottom_up.run_with_text_time doc plan in
            (H.pp_ms tt, H.pp_ms (max 0.0 (t -. tt)))
          | Some _ | None -> ("-", "-")
        in
        [
          id; strategy; string_of_int n; H.pp_ms t; text_t; auto_t; H.pp_ms tb;
          Printf.sprintf "%.0fx" (tb /. t);
        ])
      medline_queries
  in
  H.table
    [ "query"; "strategy"; "results"; "SXSI"; "text part"; "auto part"; "baseline"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table VII: word-based text queries                                   *)
(* ------------------------------------------------------------------ *)

let table7 () =
  H.section "Table VII: word-based queries (word index plugged into SXSI)";
  let battery (c : corpus) queries =
    let doc = Lazy.force c.doc and dom = Lazy.force c.dom in
    let funs = ft_registry doc in
    let dom_funs = ft_dom_funs () in
    (* force the word index build outside the timings *)
    ignore (funs "ftcontains:warmup");
    List.map
      (fun (id, q) ->
        let cq = Engine.prepare doc q in
        let n, t = H.time_with_result (fun () -> Engine.count ~funs cq) in
        let nb, tb =
          H.time_with_result (fun () ->
              Naive_eval.eval_count ~funs:dom_funs dom (parse_query q))
        in
        if n <> nb then Printf.printf "!! %s: engines disagree (%d vs %d)\n" id n nb;
        [
          id; c.name; string_of_int n; H.pp_ms t; H.pp_ms tb;
          Printf.sprintf "%.0fx" (tb /. t);
        ])
      queries
  in
  H.table
    [ "query"; "corpus"; "results"; "SXSI+word idx"; "baseline scan"; "speedup" ]
    (battery (Lazy.force medline) word_queries_medline
    @ battery (Lazy.force wiki) word_queries_wiki)

(* ------------------------------------------------------------------ *)
(* Figure 18: PSSM queries over the bio corpus                          *)
(* ------------------------------------------------------------------ *)

let fig18 () =
  H.section "Figure 18: PSSM queries over gene-annotation XML";
  let c = Lazy.force bio in
  let doc = Lazy.force c.doc in
  let funs = Sxsi_bio.Pssm.registry Sxsi_bio.Pssm.sample_matrices in
  let texts = Document.texts doc in
  let rows =
    List.map
      (fun q ->
        let cq = Engine.prepare doc q in
        let n, total = H.time_with_result (fun () -> Engine.count ~funs cq) in
        (* the text phase alone: scan every text with the matrix *)
        let mname =
          (* the matrix name follows ", " in "PSSM(., M1)" *)
          let i = String.rindex q 'M' in
          String.sub q i 2
        in
        let m, thr =
          List.find
            (fun (m, _) -> Sxsi_bio.Pssm.name m = mname)
            Sxsi_bio.Pssm.sample_matrices
        in
        let text_t =
          H.time (fun () ->
              Array.iter (fun s -> ignore (Sxsi_bio.Pssm.matches m ~threshold:thr s)) texts)
        in
        [
          q; string_of_int n; H.pp_ms text_t;
          H.pp_ms (max 0.0 (total -. text_t)); H.pp_ms total;
        ])
      pssm_queries
  in
  H.table [ "query"; "results"; "text"; "auto"; "total" ] rows;
  (* index size: character FM vs run-length FM on the repetitive texts *)
  let fm = Sxsi_fm.Fm_index.build texts in
  let rle = Sxsi_bio.Rle_fm.build texts in
  H.table
    [ "index"; "size"; "runs/symbols" ]
    [
      [ "FM-index"; H.pp_bytes (Sxsi_fm.Fm_index.space_bits fm / 8); "-" ];
      [
        "RLCSA (run-length)";
        H.pp_bytes (Sxsi_bio.Rle_fm.space_bits rle / 8);
        Printf.sprintf "%.3f"
          (float_of_int (Sxsi_bio.Rle_fm.run_count rle)
          /. float_of_int (Sxsi_bio.Rle_fm.length rle));
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Introduction claim: in-memory indexed evaluation vs streaming        *)
(* ------------------------------------------------------------------ *)

let streaming () =
  H.section "Intro: indexed (SXSI) vs one-pass streaming evaluation";
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  Printf.printf "document: %s (streaming re-parses it per query)\n"
    (H.pp_bytes (String.length c.xml));
  let rows =
    List.map
      (fun q ->
        let path = parse_query q in
        let cq = Engine.prepare doc q in
        let n, t_idx = H.time_with_result (fun () -> Engine.count cq) in
        let ns, t_str = H.time_with_result (fun () -> Stream_eval.count c.xml path) in
        if n <> ns then Printf.printf "!! %s: %d vs %d\n" q n ns;
        [
          q; string_of_int n; H.pp_ms t_idx; H.pp_ms t_str;
          Printf.sprintf "%.0fx" (t_str /. t_idx);
        ])
      [
        "//keyword"; "//listitem//keyword"; "/site/people/person/name";
        "//emph"; "//text()"; "//@id";
      ]
  in
  H.table [ "query"; "results"; "SXSI (indexed)"; "streaming"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* Service throughput: N client domains x M cached queries              *)
(* ------------------------------------------------------------------ *)

let service () =
  H.section
    "Service throughput over TCP: N depth-1 clients x M queries (evloop front end)";
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  let queries =
    Array.of_list (List.map (fun (_, q) -> "COUNT bench " ^ q) xmark_queries)
  in
  let m = Array.length queries in
  (* a fresh server per cell: the event-driven front end over one
     shard, on an ephemeral port, stopped and joined after the cell *)
  let with_server ~cache f =
    let options =
      {
        Sxsi_service.Service.default_options with
        Sxsi_service.Service.compiled_cache = (if cache then 256 else 0);
        count_cache = (if cache then 4096 else 0);
      }
    in
    let svc = Sxsi_service.Service.create ~options () in
    Sxsi_service.Service.add_document svc "bench" doc;
    let stop = Atomic.make false in
    let port = Atomic.make 0 in
    let srv =
      Domain.spawn (fun () ->
          Sxsi_service.Ev_server.serve ~port:0
            ~on_listen:(fun p -> Atomic.set port p)
            ~stop:(fun () -> Atomic.get stop)
            (Sxsi_service.Shards.of_service svc))
    in
    while Atomic.get port = 0 do Thread.yield () done;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join srv;
        Sxsi_service.Service.shutdown svc)
      (fun () -> f (Atomic.get port) svc)
  in
  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    (* depth-1 RPC over loopback: never wait for Nagle *)
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  in
  let exchange ic oc line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | exception End_of_file -> false
    | l when l = "DATA" ->
      let rec drain () = if input_line ic <> "." then drain () in
      drain ();
      true
    | _ -> true
  in
  (* N clients, one OS thread each, request/response at pipeline depth
     1: on one core, rising throughput with N comes from the loop
     batching many connections per turn, not from parallelism *)
  let run_clients ~clients ~window port =
    let started = Atomic.make false in
    let stop = Atomic.make false in
    let counts = Array.make clients 0 in
    let ready = Atomic.make 0 in
    let threads =
      List.init clients (fun i ->
          Thread.create
            (fun () ->
              let fd = connect port in
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  Atomic.incr ready;
                  while not (Atomic.get started) do
                    Thread.yield ()
                  done;
                  let j = ref (i * 3) in
                  while not (Atomic.get stop) do
                    let q = queries.(!j mod m) in
                    incr j;
                    if exchange ic oc q then counts.(i) <- counts.(i) + 1
                    else Atomic.set stop true
                  done))
            ())
    in
    while Atomic.get ready < clients do Thread.yield () done;
    let t0 = Unix.gettimeofday () in
    Atomic.set started true;
    Thread.delay window;
    Atomic.set stop true;
    let t1 = Unix.gettimeofday () in
    List.iter Thread.join threads;
    float_of_int (Array.fold_left ( + ) 0 counts) /. (t1 -. t0)
  in
  let run ~clients ~cache =
    with_server ~cache (fun port svc ->
        (* warm over the wire so the window measures steady-state *)
        let fd = connect port in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Array.iter (fun q -> ignore (exchange ic oc q : bool)) queries;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let qps = run_clients ~clients ~window:0.5 port in
        let stat key =
          match List.assoc_opt key (Sxsi_service.Service.stats svc) with
          | Some v -> float_of_string v
          | None -> 0.0
        in
        let hits = stat "compiled_hits" and misses = stat "compiled_misses" in
        let hit_rate =
          if hits +. misses > 0.0 then 100.0 *. hits /. (hits +. misses) else 0.0
        in
        (qps, hit_rate))
  in
  Printf.printf "corpus %s: %d queries, window 0.5s per cell, depth-1 TCP clients\n"
    c.name m;
  let rows =
    List.map
      (fun clients ->
        let qps_on, hits_on = run ~clients ~cache:true in
        let qps_off, hits_off = run ~clients ~cache:false in
        H.measure
          [
            ("clients", J.Int clients);
            ("queries", J.Int m);
            ("qps_cache_on", J.Float qps_on);
            ("hit_rate_cache_on", J.Float hits_on);
            ("qps_cache_off", J.Float qps_off);
            ("hit_rate_cache_off", J.Float hits_off);
          ];
        [
          string_of_int clients;
          H.pp_rate qps_on;
          Printf.sprintf "%.0f%%" hits_on;
          H.pp_rate qps_off;
          Printf.sprintf "%.0f%%" hits_off;
          Printf.sprintf "%.1fx" (qps_on /. qps_off);
        ])
      [ 1; 4; 16; 64 ]
  in
  H.table
    [ "clients"; "cache on"; "hit rate"; "cache off"; "hit rate"; "cached gain" ]
    rows

(* ------------------------------------------------------------------ *)
(* Parallel substrate: build time and query throughput vs pool size     *)
(* ------------------------------------------------------------------ *)

let par () =
  H.section "Parallel substrate: index build and query throughput vs domain count";
  let c = Lazy.force xmark_small in
  let xml = c.xml in
  Printf.printf "corpus %s: %s source, %d queries, window 0.5s per throughput cell\n"
    c.name (H.pp_bytes (String.length xml)) (List.length xmark_queries);
  let with_pool d f =
    if d <= 1 then f None
    else Sxsi_par.Pool.with_pool ~name:"bench" ~domains:d (fun p -> f (Some p))
  in
  let seq_build = ref 0.0 in
  let seq_qps = ref 0.0 in
  let rows =
    List.map
      (fun d ->
        with_pool d @@ fun pool ->
        let doc, t_build =
          H.time_with_result (fun () -> Document.build ?pool xml)
        in
        let compiled =
          Array.of_list (List.map (fun (_, q) -> Engine.prepare doc q) xmark_queries)
        in
        Array.iter (fun cq -> Engine.precompile cq) compiled;
        let m = Array.length compiled in
        let cursor = ref 0 in
        (* baseline the per-worker counters so the utilization numbers
           cover just the timed window, not the build *)
        let stats0 =
          match pool with Some p -> Sxsi_par.Pool.worker_stats p | None -> []
        in
        let t_q0 = Unix.gettimeofday () in
        let qps =
          H.throughput (fun () ->
              let j = !cursor in
              cursor := j + 1;
              Engine.count ?pool compiled.(j mod m))
        in
        let window_ns = (Unix.gettimeofday () -. t_q0) *. 1e9 in
        if d = 1 then begin
          seq_build := t_build;
          seq_qps := qps
        end;
        let workers =
          match pool with
          | None -> []
          | Some p ->
            List.map2
              (fun (slot, busy, steals, parks) (_, busy0, steals0, parks0) ->
                J.Obj
                  [
                    ("slot", J.Int slot);
                    ("busy_ns", J.Int (busy - busy0));
                    ( "utilization",
                      J.Float (float_of_int (busy - busy0) /. window_ns) );
                    ("steals", J.Int (steals - steals0));
                    ("parks", J.Int (parks - parks0));
                  ])
              (Sxsi_par.Pool.worker_stats p) stats0
        in
        H.measure
          ([
             ("domains", J.Int d);
             ("build_s", J.Float t_build);
             ("build_speedup", J.Float (!seq_build /. t_build));
             ("count_qps", J.Float qps);
             ("query_speedup", J.Float (qps /. !seq_qps));
           ]
          @
          match pool with
          | None -> []
          | Some p ->
            [
              ("workers", J.List workers);
              ("steal_failures", J.Int (Sxsi_par.Pool.steal_failures_total p));
              ("cas_retries", J.Int (Sxsi_par.Pool.cas_retries_total p));
            ]);
        [
          string_of_int d;
          H.pp_ms t_build;
          Printf.sprintf "%.2fx" (!seq_build /. t_build);
          H.pp_rate qps;
          Printf.sprintf "%.2fx" (qps /. !seq_qps);
        ])
      [ 1; 2; 4 ]
  in
  H.table [ "domains"; "build"; "build speedup"; "count"; "count speedup" ] rows

(* ------------------------------------------------------------------ *)
(* Tree backends: Bp vs grammar-compressed, space and query throughput  *)
(* ------------------------------------------------------------------ *)

(* The comparison the pluggable-backend subsystem exists for: on the
   repetitive logs corpus the grammar backend's tree structure should
   be several times smaller than Bp's, while query answers stay
   byte-identical (the test suite proves that part) at a bounded
   throughput cost.  On xmark — little structural repetition — the
   grammar buys little; the interesting number there is the slowdown. *)
let backend () =
  H.section "Tree backends: balanced parentheses vs grammar-compressed (SLP)";
  let one (c : corpus) queries =
    let xml = c.xml in
    let build backend = Document.of_xml ~backend xml in
    let bench backend =
      let doc, t_build = H.time_with_result (fun () -> build backend) in
      let tree_bytes = Sxsi_tree.Tree_backend.space_bits (Document.tree doc) / 8 in
      let compiled =
        Array.of_list (List.map (fun (_, q) -> Engine.prepare doc q) queries)
      in
      let m = Array.length compiled in
      let cursor = ref 0 in
      let count_qps =
        H.throughput (fun () ->
            let j = !cursor in
            cursor := j + 1;
            Engine.count compiled.(j mod m))
      in
      cursor := 0;
      let select_qps =
        H.throughput (fun () ->
            let j = !cursor in
            cursor := j + 1;
            ignore (Engine.select compiled.(j mod m)))
      in
      (doc, t_build, tree_bytes, count_qps, select_qps)
    in
    let _, t_bp, bytes_bp, cq_bp, sq_bp = bench `Bp in
    let doc_g, t_g, bytes_g, cq_g, sq_g = bench `Grammar in
    let ratio = float_of_int bytes_bp /. float_of_int bytes_g in
    let slp = Sxsi_tree.Tree_backend.slp_exn (Document.tree doc_g) in
    H.measure
      [
        ("corpus", J.String c.name);
        ("tree_bytes_bp", J.Int bytes_bp);
        ("tree_bytes_grammar", J.Int bytes_g);
        ("space_ratio", J.Float ratio);
        ("build_s_bp", J.Float t_bp);
        ("build_s_grammar", J.Float t_g);
        ("count_qps_bp", J.Float cq_bp);
        ("count_qps_grammar", J.Float cq_g);
        ("select_qps_bp", J.Float sq_bp);
        ("select_qps_grammar", J.Float sq_g);
        ("grammar_rules", J.Int (Sxsi_grammar.Slp.rule_count slp));
        ("grammar_slots", J.Int (Sxsi_grammar.Slp.slot_count slp));
        ("grammar_depth", J.Int (Sxsi_grammar.Slp.depth_bound slp));
      ];
    [
      c.name;
      H.pp_bytes bytes_bp;
      H.pp_bytes bytes_g;
      Printf.sprintf "%.1fx" ratio;
      H.pp_rate cq_bp;
      H.pp_rate cq_g;
      H.pp_rate sq_bp;
      H.pp_rate sq_g;
    ]
  in
  let rows =
    [
      one (Lazy.force xmark_small) xmark_queries;
      one (Lazy.force logs) logs_queries;
    ]
  in
  H.table
    [
      "corpus"; "tree (bp)"; "tree (slp)"; "space gain"; "count/s (bp)";
      "count/s (slp)"; "select/s (bp)"; "select/s (slp)";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Budget-check overhead: the count path with governance off vs. on     *)
(* ------------------------------------------------------------------ *)

(* A budget generous enough never to trip: what this measures is the
   pure cost of the sampled checks riding in the hot loops (one
   fetch_and_add per step; clock reads every 1024th), not any
   enforcement.  The reproduction target is "disabled indistinguishable
   from before, enabled within ~2%". *)
let qos () =
  H.section "QoS: budget-check overhead on the XMark count workload";
  let c = Lazy.force xmark_small in
  let doc = Document.of_xml c.xml in
  let compiled =
    Array.of_list (List.map (fun (_, q) -> Engine.prepare doc q) xmark_queries)
  in
  Array.iter Engine.precompile compiled;
  let m = Array.length compiled in
  let qps_with budget =
    let cursor = ref 0 in
    H.throughput (fun () ->
        let j = !cursor in
        cursor := j + 1;
        Engine.count ?budget compiled.(j mod m))
  in
  let qps_off = qps_with None in
  let qps_on =
    qps_with
      (Some
         (Sxsi_qos.Budget.create ~deadline_ns:max_int ~max_steps:max_int
            ~max_results:max_int ~max_bytes:max_int ()))
  in
  let overhead_pct = (1.0 -. (qps_on /. qps_off)) *. 100.0 in
  H.measure
    [
      ("count_qps_budget_off", J.Float qps_off);
      ("count_qps_budget_on", J.Float qps_on);
      ("overhead_pct", J.Float overhead_pct);
      ( "qos_exceeded_total",
        J.Int (Sxsi_obs.Counter.get Sxsi_qos.Budget.exceeded_total) );
      ( "qos_deadline_exceeded_total",
        J.Int (Sxsi_obs.Counter.get Sxsi_qos.Budget.deadline_exceeded_total) );
      ( "qos_cancelled_chunks_total",
        J.Int (Sxsi_obs.Counter.get Sxsi_qos.Budget.cancelled_chunks_total) );
    ];
  H.table
    [ "budget"; "count"; "overhead" ]
    [
      [ "off"; H.pp_rate qps_off; "-" ];
      [ "on"; H.pp_rate qps_on; Printf.sprintf "%.2f%%" overhead_pct ];
    ]

(* ------------------------------------------------------------------ *)
(* Flight recorder overhead: the same count workload with the journal   *)
(* disabled (one atomic load per probe) and enabled (full recording)    *)
(* ------------------------------------------------------------------ *)

let obs () =
  H.section "Flight recorder: journal overhead on the XMark count workload";
  let c = Lazy.force xmark_small in
  let doc = Document.of_xml c.xml in
  let compiled =
    Array.of_list (List.map (fun (_, q) -> Engine.prepare doc q) xmark_queries)
  in
  Array.iter Engine.precompile compiled;
  let m = Array.length compiled in
  let qps_with enabled =
    Sxsi_obs.Journal.reset ();
    Sxsi_obs.Journal.set_enabled enabled;
    let cursor = ref 0 in
    Fun.protect
      ~finally:(fun () -> Sxsi_obs.Journal.set_enabled false)
      (fun () ->
        H.throughput (fun () ->
            let j = !cursor in
            cursor := j + 1;
            Engine.count compiled.(j mod m)))
  in
  let qps_off = qps_with false in
  let qps_on = qps_with true in
  let records = Sxsi_obs.Journal.records_total () in
  let dropped = Sxsi_obs.Journal.dropped_total () in
  let dump_bytes =
    String.length
      (Sxsi_obs.Json.to_string (Sxsi_obs.Journal.to_json (Sxsi_obs.Journal.snapshot ())))
  in
  Sxsi_obs.Journal.reset ();
  let overhead_pct = (1.0 -. (qps_on /. qps_off)) *. 100.0 in
  H.measure
    [
      ("count_qps_journal_off", J.Float qps_off);
      ("count_qps_journal_on", J.Float qps_on);
      ("overhead_pct", J.Float overhead_pct);
      ("journal_records_total", J.Int records);
      ("journal_dropped_total", J.Int dropped);
      ("journal_dump_bytes", J.Int dump_bytes);
    ];
  H.table
    [ "journal"; "count"; "overhead" ]
    [
      [ "off"; H.pp_rate qps_off; "-" ];
      [ "on"; H.pp_rate qps_on; Printf.sprintf "%.2f%%" overhead_pct ];
    ]

(* ------------------------------------------------------------------ *)
(* Sampling-profiler overhead: the same count workload with the         *)
(* profiler off (labels disabled, spans cost two atomic loads) and on   *)
(* (label slot maintenance + the sampler domain).  CI gates the         *)
(* overhead at 3%.                                                      *)
(* ------------------------------------------------------------------ *)

let prof () =
  H.section "Sampling profiler: overhead on the XMark count workload";
  let c = Lazy.force xmark_small in
  let doc = Document.of_xml c.xml in
  let compiled =
    Array.of_list (List.map (fun (_, q) -> Engine.prepare doc q) xmark_queries)
  in
  Array.iter Engine.precompile compiled;
  let m = Array.length compiled in
  let qps_run () =
    let cursor = ref 0 in
    H.throughput (fun () ->
        let j = !cursor in
        cursor := j + 1;
        Engine.count compiled.(j mod m))
  in
  let was_running = Sxsi_prof.Prof.running () in
  if was_running then Sxsi_prof.Prof.stop ();
  (* interleaved best-of-3: a single 0.5s window jitters by several
     percent (GC slices, frequency scaling), far more than the 3%
     overhead gate; the max over alternating off/on trials converges to
     each configuration's true peak rate and cancels slow drift *)
  let qps_off = ref 0.0 and qps_on = ref 0.0 in
  let since = Sxsi_prof.Prof.snapshot () in
  for _ = 1 to 3 do
    qps_off := Float.max !qps_off (qps_run ());
    Sxsi_prof.Prof.start ();
    qps_on := Float.max !qps_on (qps_run ());
    Sxsi_prof.Prof.stop ()
  done;
  let qps_off = !qps_off and qps_on = !qps_on in
  let report = Sxsi_prof.Prof.report ~since () in
  if was_running then Sxsi_prof.Prof.start ();
  let overhead_pct = (1.0 -. (qps_on /. qps_off)) *. 100.0 in
  let unattributed = Sxsi_prof.Prof.unattributed_pct report in
  H.measure
    [
      ("count_qps_profiler_off", J.Float qps_off);
      ("count_qps_profiler_on", J.Float qps_on);
      ("overhead_pct", J.Float overhead_pct);
      ("sampler_hz", J.Int report.Sxsi_prof.Prof.r_hz);
      ("sampler_ticks", J.Int report.Sxsi_prof.Prof.r_ticks);
      ("unattributed_pct", J.Float unattributed);
    ];
  H.table
    [ "profiler"; "count"; "overhead" ]
    [
      [ "off"; H.pp_rate qps_off; "-" ];
      [
        "on";
        H.pp_rate qps_on;
        Printf.sprintf "%.2f%% (%.1f%% unattributed)" overhead_pct unattributed;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* XMark per-query latency with trace-derived phase breakdown           *)
(* ------------------------------------------------------------------ *)

let probe_flag = ref false

let xmark () =
  H.section
    (Printf.sprintf "XMark per-query latency and phase breakdown (X01-X17, probes %s)"
       (if !probe_flag then "on" else "off"));
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  (* --probe: keep live index probes installed during the timed loops,
     the worst case for instrumentation overhead (every FM and tag-jump
     call feeds the counters).  Default: the probes stay disabled, as
     in production, and the timed loops only pay the atomic-load
     check. *)
  if !probe_flag then begin
    Sxsi_fm.Fm_index.set_probe (Some (Sxsi_fm.Fm_index.create_probe ()));
    Sxsi_tree.Tag_index.set_probe (Some (Sxsi_tree.Tag_index.create_probe ()))
  end;
  Fun.protect
    ~finally:(fun () ->
      Sxsi_fm.Fm_index.set_probe None;
      Sxsi_tree.Tag_index.set_probe None)
    (fun () ->
      let rows =
        List.map
          (fun (id, q) ->
            let cq = Engine.prepare doc q in
            let n, t_count = H.time_with_result (fun () -> Engine.count cq) in
            let t_sel = H.time (fun () -> Engine.select cq) in
            (* Two traced evaluations through the full pipeline (fresh
               parse + compile): the optimized automaton for the phase
               breakdown, and the raw translation for the visited-node
               ledger — the off/on column pairs below. *)
            let traced optimize =
              let tr = Sxsi_obs.Trace.create ~label:id () in
              let cq' = Engine.prepare ~trace:tr ~optimize doc q in
              ignore (Engine.select_preorders ~trace:tr cq');
              tr
            in
            let tr = traced true in
            let tr_off = traced false in
            let phase p = Sxsi_obs.Trace.phase_ns tr p in
            let counter_of tr name =
              match List.assoc_opt name (Sxsi_obs.Trace.counters tr) with
              | Some v -> v
              | None -> 0
            in
            let counter = counter_of tr in
            H.measure
              [
                ("id", J.String id);
                ("query", J.String q);
                ("results", J.Int n);
                ("count_ns", J.Int (int_of_float (t_count *. 1e9)));
                ("select_ns", J.Int (int_of_float (t_sel *. 1e9)));
                ("probes_during_timing", J.Bool !probe_flag);
                ("visited_noopt", J.Int (counter_of tr_off "visited"));
                ("visited_opt", J.Int (counter "visited"));
                ("tag_jumps_noopt", J.Int (counter_of tr_off "tag_jumps"));
                ("tag_jumps_opt", J.Int (counter "tag_jumps"));
                ("opt_states_before", J.Int (counter "opt_states_before"));
                ("opt_states_after", J.Int (counter "opt_states_after"));
                ("opt_trans_before", J.Int (counter "opt_trans_before"));
                ("opt_trans_after", J.Int (counter "opt_trans_after"));
                ("opt_jump_tags", J.Int (counter "opt_jump_tags"));
                ("trace", Sxsi_obs.Trace.to_json tr);
              ];
            [
              id;
              string_of_int n;
              H.pp_ms t_count;
              H.pp_ms t_sel;
              H.pp_ms (float_of_int (phase Sxsi_obs.Trace.Run) /. 1e9);
              H.pp_ms (float_of_int (phase Sxsi_obs.Trace.Materialize) /. 1e9);
              string_of_int (counter_of tr_off "visited");
              string_of_int (counter "visited");
              string_of_int (counter_of tr_off "tag_jumps");
              string_of_int (counter "tag_jumps");
              string_of_int (counter "fm_search_calls");
            ])
          xmark_queries
      in
      H.table
        [
          "query"; "results"; "count"; "select"; "run phase"; "mat phase";
          "visited off"; "visited on"; "jumps off"; "jumps on"; "fm searches";
        ]
        rows)

(* ------------------------------------------------------------------ *)
(* Bit kernels: rank/select/next1 microbench over a density x size      *)
(* grid, new broadword kernels vs the previous table-driven kernels     *)
(* (Bitvec_ref, a faithful snapshot).  Both arms run in the same        *)
(* process on the same vectors, so the speedup columns are             *)
(* machine-independent; the absolute ops/s feed the baseline diff.      *)
(* ------------------------------------------------------------------ *)

let bits () =
  H.section "Bit kernels: rank/select throughput, broadword vs previous kernels";
  let module B = Sxsi_bits.Bitvec in
  let module R = Sxsi_bits.Bitvec_ref in
  let rng = Random.State.make [| 0x5eed; 0xb17 |] in
  let batch = 4096 in
  (* each throughput call performs [batch] operations *)
  let mops per_call = per_call *. float_of_int batch /. 1e6 in
  let grid =
    [
      (65_536, 1024); (65_536, 64); (65_536, 2);
      (1_048_576, 1024); (1_048_576, 64); (1_048_576, 2);
    ]
  in
  Printf.printf
    "batch %d ops/call, window 0.5s per cell; density 1/k means every bit\n\
     is set with probability 1/k\n"
    batch;
  let rows =
    List.map
      (fun (n, inv_density) ->
        let bits = Array.init n (fun _ -> Random.State.int rng inv_density = 0) in
        let bv = B.of_fun n (fun i -> bits.(i)) in
        let old_bv = R.of_fun n (fun i -> bits.(i)) in
        let ones = B.count bv in
        let zeros = n - ones in
        let idx = Array.init batch (fun _ -> Random.State.int rng (n + 1)) in
        let pos = Array.init batch (fun _ -> Random.State.int rng n) in
        let j1 = Array.init batch (fun _ -> Random.State.int rng (max 1 ones)) in
        let j0 = Array.init batch (fun _ -> Random.State.int rng (max 1 zeros)) in
        let sink = ref 0 in
        let bench f = mops (H.throughput f) in
        let rank_new =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + B.rank1 bv (Array.unsafe_get idx k)
              done)
        and rank_old =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + R.rank1 old_bv (Array.unsafe_get idx k)
              done)
        in
        let sel1_new =
          if ones = 0 then 0.0
          else
            bench (fun () ->
                for k = 0 to batch - 1 do
                  sink := !sink + B.select1 bv (Array.unsafe_get j1 k)
                done)
        and sel1_old =
          if ones = 0 then 0.0
          else
            bench (fun () ->
                for k = 0 to batch - 1 do
                  sink := !sink + R.select1 old_bv (Array.unsafe_get j1 k)
                done)
        in
        let sel0_new =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + B.select0 bv (Array.unsafe_get j0 k)
              done)
        and sel0_old =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + R.select0 old_bv (Array.unsafe_get j0 k)
              done)
        in
        let next_new =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + B.next1 bv (Array.unsafe_get pos k)
              done)
        and next_old =
          bench (fun () ->
              for k = 0 to batch - 1 do
                sink := !sink + R.next1 old_bv (Array.unsafe_get pos k)
              done)
        in
        ignore !sink;
        let speedup a b = if b > 0.0 then a /. b else 0.0 in
        H.measure
          [
            ("n_bits", J.Int n);
            ("inv_density", J.Int inv_density);
            ("ones", J.Int ones);
            ("space_bits", J.Int (B.space_bits bv));
            ("rank1_mops_new", J.Float rank_new);
            ("rank1_mops_old", J.Float rank_old);
            ("rank1_speedup", J.Float (speedup rank_new rank_old));
            ("select1_mops_new", J.Float sel1_new);
            ("select1_mops_old", J.Float sel1_old);
            ("select1_speedup", J.Float (speedup sel1_new sel1_old));
            ("select0_mops_new", J.Float sel0_new);
            ("select0_mops_old", J.Float sel0_old);
            ("select0_speedup", J.Float (speedup sel0_new sel0_old));
            ("next1_mops_new", J.Float next_new);
            ("next1_mops_old", J.Float next_old);
            ("next1_speedup", J.Float (speedup next_new next_old));
          ];
        [
          H.pp_bytes (n / 8);
          Printf.sprintf "1/%d" inv_density;
          Printf.sprintf "%.1fM" rank_new;
          Printf.sprintf "%.1fM" rank_old;
          Printf.sprintf "%.2fx" (speedup rank_new rank_old);
          Printf.sprintf "%.1fM" sel1_new;
          Printf.sprintf "%.1fM" sel1_old;
          Printf.sprintf "%.2fx" (speedup sel1_new sel1_old);
          Printf.sprintf "%.2fx" (speedup sel0_new sel0_old);
          Printf.sprintf "%.2fx" (speedup next_new next_old);
        ])
      grid
  in
  H.table
    [
      "size"; "density"; "rank1 new"; "rank1 old"; "rank1 x"; "sel1 new";
      "sel1 old"; "sel1 x"; "sel0 x"; "next1 x";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make group per table             *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  H.section "Bechamel micro-benchmarks (OLS ns/run)";
  let open Bechamel in
  let c = Lazy.force xmark_small in
  let doc = Lazy.force c.doc in
  let m = Lazy.force medline in
  let mdoc = Lazy.force m.doc in
  let tc = Document.text mdoc in
  let tree = Document.tree doc in
  let count q = Staged.stage (fun () -> Engine.count (Engine.prepare doc q)) in
  let tests =
    [
      Test.make_grouped ~name:"table2-fm"
        [
          Test.make ~name:"global_count[brain]"
            (Staged.stage (fun () -> Sxsi_text.Text_collection.global_count tc "brain"));
          Test.make ~name:"contains[morphine]"
            (Staged.stage (fun () -> Sxsi_text.Text_collection.contains tc "morphine"));
        ];
      Test.make_grouped ~name:"table5-traversal"
        [
          Test.make ~name:"subtree_size(root)"
            (Staged.stage (fun () -> Sxsi_tree.Tree_backend.subtree_size tree 0));
          Test.make ~name:"count //*" (count "//*");
        ];
      Test.make_grouped ~name:"fig10-queries"
        [
          Test.make ~name:"X04" (count "//listitem//keyword");
          Test.make ~name:"X08" (count "/site/people/person[phone or homepage]/name");
        ];
    ]
  in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.3) ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let bm = Benchmark.run cfg [ instance ] elt in
          let ols =
            Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
          in
          let est = Analyze.one ols instance bm in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "%-28s %12.0f ns/run\n" (Test.Elt.name elt) ns
          | _ -> Printf.printf "%-28s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests;
  flush stdout

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig8", fig8);
    ("table2", fm_table ~sample_rate:64);
    ("table3", fm_table ~sample_rate:4);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig15", fig15);
    ("table7", table7);
    ("fig18", fig18);
    ("bits", bits);
    ("streaming", streaming);
    ("service", service);
    ("par", par);
    ("backend", backend);
    ("qos", qos);
    ("obs", obs);
    ("prof", prof);
    ("xmark", xmark);
    ("bechamel", bechamel);
  ]

let () =
  let selected = ref [] in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      H.fast ();
      parse rest
    | "--runs" :: n :: rest ->
      H.runs := int_of_string n;
      parse rest
    | "--scale" :: f :: rest ->
      Workloads.scale_factor := float_of_string f;
      parse rest
    | "--json" :: rest ->
      H.json_enabled := true;
      parse rest
    | "--probe" :: rest ->
      probe_flag := true;
      parse rest
    | "--profile" :: rest ->
      H.profile_enabled := true;
      parse rest
    | name :: rest ->
      if List.mem_assoc name sections then selected := name :: !selected
      else begin
        Printf.eprintf "unknown section %s\n" name;
        exit 1
      end;
      parse rest
  in
  parse args;
  let to_run =
    match !selected with
    | [] -> List.filter (fun (n, _) -> n <> "bechamel") sections
    | l -> List.filter (fun (n, _) -> List.mem n l) sections
  in
  (* trace/phase timings use the same monotonic clock bechamel does *)
  Sxsi_obs.Clock.set_source (fun () -> Int64.to_int (Monotonic_clock.now ()));
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      H.json_begin name;
      f ();
      match H.json_finish ~scale:!Workloads.scale_factor () with
      | Some path -> Printf.printf "[json] wrote %s\n" path
      | None -> ())
    to_run;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

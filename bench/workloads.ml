(* Benchmark documents and query batteries (Figures 9, 14, 16, 18 of
   the paper, adapted to the synthetic generators' vocabularies). *)

open Sxsi_xml
open Sxsi_baseline

let scale_factor = ref 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. !scale_factor))

type corpus = {
  name : string;
  xml : string;
  doc : Document.t Lazy.t;
  dom : Dom.t Lazy.t;
}

let corpus name xml =
  { name; xml; doc = lazy (Document.of_xml xml); dom = lazy (Dom.of_xml xml) }

let xmark_small = lazy (corpus "xmark-small" (Sxsi_datagen.Xmark.generate ~scale:(scaled 1500) ()))
let xmark_large = lazy (corpus "xmark-large" (Sxsi_datagen.Xmark.generate ~scale:(scaled 6000) ()))
let medline = lazy (corpus "medline" (Sxsi_datagen.Medline.generate ~citations:(scaled 8000) ()))
let treebank = lazy (corpus "treebank" (Sxsi_datagen.Treebank.generate ~sentences:(scaled 6000) ()))
let wiki = lazy (corpus "wiki" (Sxsi_datagen.Wiki.generate ~pages:(scaled 4000) ()))
let bio = lazy (corpus "bio" (Sxsi_datagen.Bio.generate ~genes:(scaled 250) ()))

let logs =
  lazy (corpus "logs" (Sxsi_datagen.Logs.generate ~entries:(scaled 20_000) ()))

(* Queries over the structured-log corpus (the backend comparison's
   repetitive-structure workload). *)
let logs_queries =
  [
    ("L01", "/log/entry");
    ("L02", "//entry[@severity]/msg");
    ("L03", "//entry//frame");
    ("L04", "/log/entry/latency");
    ("L05", "//kv[@key]");
  ]

(* XPathMark-style tree queries (Figure 9). *)
let xmark_queries =
  [
    ("X01", "/site/regions");
    ("X02", "/site/regions/*/item");
    ("X03", "/site/closed_auctions/closed_auction/annotation/description/text/keyword");
    ("X04", "//listitem//keyword");
    ("X05", "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date");
    ("X06", "/site/closed_auctions/closed_auction[.//keyword]/date");
    ("X07", "/site/people/person[profile/gender and profile/age]/name");
    ("X08", "/site/people/person[phone or homepage]/name");
    ("X09", "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name");
    ("X10", "//listitem[not(.//keyword/emph)]//parlist");
    ("X11", "//listitem[(.//keyword or .//emph) and (.//emph or .//bold)]/parlist");
    ("X12", "//people[.//person[not(address)] and .//person[not(watches)]]/person[watches]");
    ("X13", "/*[.//*]");
    ("X14", "//*");
    ("X15", "//*//*");
    ("X16", "//*//*//*");
    ("X17", "//*//*//*//*");
  ]

(* Treebank queries (Figure 9, T-series). *)
let treebank_queries =
  [
    ("T01", "//NP");
    ("T02", "//S[.//VP and .//NP]/VP/PP[IN]/NP/VBN");
    ("T03", "//NP[.//JJ or .//CC]");
    ("T04", "//CC[not(.//JJ)]");
    ("T05", "//NN[.//VBZ or .//IN]/*[.//NN or .//_QUOTE_]");
  ]

(* Medline text queries (Figure 14). *)
let medline_queries =
  [
    ("M01", "//Article[.//AbstractText[contains(., \"foot\") or contains(., \"feet\")]]");
    ("M02", "//Article[.//AbstractText[contains(., \"plus\")]]");
    ("M03", "//Article[.//AbstractText[contains(., \"plus\") or contains(., \"for\")]]");
    ("M04", "//Article[.//AbstractText[contains(., \"plus\") and not(contains(., \"for\"))]]");
    ("M05", "//MedlineCitation/Article/AuthorList/Author[./LastName[starts-with(., \"Bar\")]]");
    ("M06", "//*[.//LastName[contains(., \"Nguyen\")]]");
    ("M07", "//*//AbstractText[contains(., \"epididymis\")]");
    ("M08", "//*[.//PublicationType[ends-with(., \"Article\")]]");
    ("M09", "//MedlineCitation[.//Country[contains(., \"AUSTRALIA\")]]");
    ("M10", "//MedlineCitation[contains(., \"blood cell\")]");
    ("M11", "//*/*[contains(., \"1999\")]");
  ]

(* Word-based queries (Figure 16): W01-W05 over Medline, W06-W10 over
   the wiki corpus. *)
let word_queries_medline =
  [
    ("W01", "//Article[.//AbstractText[ftcontains(., 'blood sample')]]");
    ("W02", "//Article[.//AbstractText[ftcontains(., 'various types of')]]");
    ("W03",
     "//Article[.//AbstractText[ftcontains(., 'various types of') and ftcontains(., 'immune cells')]]");
    ("W04", "//Article[.//AbstractText[ftcontains(., 'of the bone marrow')]]");
    ("W05",
     "//Article[.//AbstractText[ftcontains(., 'cell') and not(ftcontains(., 'blood'))]]");
  ]

let word_queries_wiki =
  [
    ("W06", "//text[ftcontains(., 'dark horse')]");
    ("W07", "//text[ftcontains(., 'horse') and ftcontains(., 'princess')]");
    ("W08", "//page/child::title[ftcontains(., 'crude oil')]");
    ("W09", "//page[.//text[ftcontains(., 'played on a board')]]/title");
    ("W10", "//page[.//text[ftcontains(., 'dark') and ftcontains(., 'gold')]]/title");
  ]

(* PSSM queries (Figure 18). *)
let pssm_queries =
  [
    "//promoter[PSSM(., M1)]";
    "//promoter[PSSM(., M2)]";
    "//promoter[PSSM(., M3)]";
    "//exon[.//sequence[PSSM(., M1)]]";
    "//exon[.//sequence[PSSM(., M2)]]";
    "//exon[.//sequence[PSSM(., M3)]]";
    "//*[PSSM(., M1)]";
    "//*[PSSM(., M2)]";
    "//*[PSSM(., M3)]";
  ]

(* Table II/III patterns, sweeping occurrence counts over orders of
   magnitude in the Medline corpus vocabulary. *)
let fm_patterns =
  [
    "Bakst"; "ruminants"; "morphine"; "AUSTRALIA"; "molecule"; "brain";
    "human"; "blood"; "from"; "with"; "in"; "a";
  ]

(* Word-index registry over a document's texts. *)
let ft_registry doc =
  let widx = lazy (Sxsi_wordindex.Word_index.build (Document.texts doc)) in
  fun key ->
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some
        {
          Sxsi_core.Run.cp_match =
            (fun s -> Sxsi_wordindex.Word_index.matches_text (Lazy.force widx) phrase s);
          cp_texts =
            Some (fun () -> Sxsi_wordindex.Word_index.contains_phrase (Lazy.force widx) phrase);
        }
    | _ -> None

(* DOM-side word predicate for the baseline comparison. *)
let ft_dom_funs () =
  let scratch = Sxsi_wordindex.Word_index.build [| "" |] in
  fun key ->
    match String.index_opt key ':' with
    | Some i when String.sub key 0 i = "ftcontains" ->
      let phrase = String.sub key (i + 1) (String.length key - i - 1) in
      Some (fun node ->
          Sxsi_wordindex.Word_index.matches_text scratch phrase (Dom.string_value node))
    | _ -> None

let pssm_dom_funs () =
  fun key ->
    List.find_map
      (fun (m, threshold) ->
        if key = "PSSM:" ^ Sxsi_bio.Pssm.name m then
          Some
            (fun node ->
              Sxsi_bio.Pssm.matches m ~threshold (Dom.string_value node))
        else None)
      Sxsi_bio.Pssm.sample_matrices

(* Timing and table-printing helpers shared by every benchmark section.
   Protocol mirrors §6.1: each measurement runs the workload several
   times in a row, discards the first (cold) run and averages the
   rest. *)

let runs = ref 3
let fast () = runs := 1

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* seconds, averaged over !runs after one discarded warm-up *)
let time f =
  ignore (f ());
  let acc = ref 0.0 in
  for _ = 1 to !runs do
    let _, t = time_once f in
    acc := !acc +. t
  done;
  !acc /. float_of_int !runs

let time_with_result f =
  let r = f () in
  let acc = ref 0.0 in
  for _ = 1 to !runs do
    let _, t = time_once f in
    acc := !acc +. t
  done;
  (r, !acc /. float_of_int !runs)

(* Throughput mode: run the operation back-to-back for a wall-clock
   window and report completed operations per second (the serving view
   of performance, vs the latency-averaging [time]). *)
let throughput ?(window = 0.5) f =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. window in
  let ops = ref 0 in
  while Unix.gettimeofday () < deadline do
    ignore (f ());
    incr ops
  done;
  float_of_int !ops /. (Unix.gettimeofday () -. t0)

(* Aggregate ops/sec across [domains] concurrent workers hammering [f]
   for the same window; [f] receives the worker index. *)
let throughput_domains ?(window = 0.5) ~domains f =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. window in
  let worker i () =
    (* retire this domain's profiler label slot on exit: bench spawns
       short-lived domains, and a dead slot would keep being sampled at
       its last path forever *)
    Fun.protect ~finally:Sxsi_obs.Journal.retire_slot @@ fun () ->
    let ops = ref 0 in
    while Unix.gettimeofday () < deadline do
      ignore (f i);
      incr ops
    done;
    !ops
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  let total = List.fold_left (fun acc h -> acc + Domain.join h) 0 handles in
  float_of_int total /. (Unix.gettimeofday () -. t0)

let pp_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk/s" (r /. 1e3)
  else Printf.sprintf "%.0f/s" r

let ms t = t *. 1000.0

let pp_ms t =
  let m = ms t in
  if m >= 1000.0 then Printf.sprintf "%.2fs" (t)
  else if m >= 100.0 then Printf.sprintf "%.0fms" m
  else if m >= 1.0 then Printf.sprintf "%.1fms" m
  else Printf.sprintf "%.3fms" m

let pp_bytes b =
  let f = float_of_int b in
  if f >= 1e9 then Printf.sprintf "%.2fGB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fMB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fKB" (f /. 1e3)
  else Printf.sprintf "%dB" b

(* ------------------------------------------------------------------ *)
(* Machine-readable output: with --json, every section accumulates its
   printed tables plus any structured measurements and lands in
   BENCH_<section>.json next to the human-readable stdout.  The files
   carry no timestamps or host names so consecutive runs diff cleanly. *)

module J = Sxsi_obs.Json

let json_enabled = ref false

type json_acc = {
  key : string;
  mutable tables : J.t list;        (* reversed *)
  mutable measurements : J.t list;  (* reversed *)
}

let json_acc : json_acc option ref = ref None

(* --profile: sample every section with the profiler and append a
   [profile] object (unattributed share, top self-time stacks) to its
   BENCH_<section>.json, so baselines track where section time goes. *)
let profile_enabled = ref false
let profile_since : Sxsi_prof.Prof.snapshot option ref = ref None

let json_begin key =
  if !json_enabled then json_acc := Some { key; tables = []; measurements = [] };
  if !profile_enabled then begin
    Sxsi_prof.Prof.ensure_started ();
    profile_since := Some (Sxsi_prof.Prof.snapshot ())
  end

let profile_json () =
  match !profile_since with
  | None -> None
  | Some since ->
    profile_since := None;
    let r = Sxsi_prof.Prof.report ~since () in
    let pct = Sxsi_prof.Prof.unattributed_pct r in
    let top =
      List.filteri (fun i _ -> i < 10) r.Sxsi_prof.Prof.r_entries
      |> List.map (fun e ->
             J.Obj
               [
                 ("stack", J.String (String.concat ";" e.Sxsi_prof.Prof.e_stack));
                 ("self_ns", J.Int e.Sxsi_prof.Prof.e_self_ns);
               ])
    in
    Some
      ( pct,
        J.Obj
          [
            ("unattributed_pct", J.Float pct);
            ("ticks", J.Int r.Sxsi_prof.Prof.r_ticks);
            ("stacks", J.List top);
          ] )

let json_table header rows =
  match !json_acc with
  | None -> ()
  | Some acc ->
    let strings l = J.List (List.map (fun s -> J.String s) l) in
    acc.tables <-
      J.Obj [ ("header", strings header); ("rows", J.List (List.map strings rows)) ]
      :: acc.tables

let measure fields =
  match !json_acc with
  | None -> ()
  | Some acc -> acc.measurements <- J.Obj fields :: acc.measurements

(* Returns the path written, if JSON output is on. *)
let json_finish ~scale () =
  let profiled = profile_json () in
  (match profiled with
  | Some (pct, _) -> Printf.printf "[prof] %.1f%% of sampled time unattributed\n" pct
  | None -> ());
  match !json_acc with
  | None -> None
  | Some acc ->
    json_acc := None;
    let path = "BENCH_" ^ acc.key ^ ".json" in
    let doc =
      J.Obj
        ([
           ("schema", J.String "sxsi-bench-v1");
           ("section", J.String acc.key);
           ("runs", J.Int !runs);
           ("scale", J.Float scale);
           ("tables", J.List (List.rev acc.tables));
           ("measurements", J.List (List.rev acc.measurements));
         ]
        @ match profiled with Some (_, p) -> [ ("profile", p) ] | None -> [])
    in
    let oc = open_out path in
    output_string oc (J.to_string doc);
    output_char oc '\n';
    close_out oc;
    Some path

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    (header :: rows);
  let print_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then print_string "  ";
        Printf.printf "%-*s" widths.(i) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows;
  flush stdout;
  json_table header rows

(* Serialization sink: reused buffer, returns total bytes produced. *)
let sink = Buffer.create 65536

let serialize_bytes doc nodes =
  let total = ref 0 in
  Array.iter
    (fun x ->
      Buffer.clear sink;
      Buffer.add_string sink (Sxsi_xml.Document.serialize doc x);
      total := !total + Buffer.length sink)
    nodes;
  !total

(* Heap words currently live, as a coarse memory probe. *)
let live_mb () =
  let st = Gc.quick_stat () in
  float_of_int (st.Gc.heap_words * 8) /. 1e6
